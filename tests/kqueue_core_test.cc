// Tests for the kqueue-style filter core: the fused changelist+eventlist
// trap, per-(fd,filter) knotes, EV_CLEAR edge-like vs level semantics,
// EV_ONESHOT, enable/disable, truncation, and the registration probe.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/fault/fault_plane.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

class KqueueCoreTest : public SimWorldTest {
 protected:
  int OpenDev() {
    kqfd_ = sys_.OpenKqueue();
    EXPECT_GE(kqfd_, 0);
    return kqfd_;
  }

  // Pure-changelist kevent: apply one change, harvest nothing.
  int Change(int fd, int16_t filter, uint16_t flags) {
    const KEvent change{fd, filter, flags, 0};
    return sys_.Kevent(kqfd_, {&change, 1}, {}, 0);
  }

  // Pure-harvest kevent (non-blocking); returns delivered events.
  std::vector<KEvent> Harvest(int max = 16) {
    std::vector<KEvent> events(static_cast<size_t>(max));
    const int n = sys_.Kevent(kqfd_, {}, events, 0);
    events.resize(n > 0 ? static_cast<size_t>(n) : 0);
    return events;
  }

  int kqfd_ = -1;
};

TEST_F(KqueueCoreTest, RegisterAndHarvestReadable) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  EXPECT_TRUE(sys_.kqueue_dev(kqfd_)->HasKnote(fd, kFiltRead));
  client->Write(Chunk{"GET ", 0});
  RunFor(Millis(5));
  auto events = Harvest();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ident, fd);
  EXPECT_EQ(events[0].filter, kFiltRead);
  EXPECT_EQ(kernel_.stats().kq_events_delivered, 1u);
}

TEST_F(KqueueCoreTest, FusedChangelistAndHarvestIsOneTrap) {
  // The §6 idea kqueue ran with: registration and collection in one call.
  OpenDev();
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"go", 0});
  RunFor(Millis(5));
  const KEvent change{fd, kFiltRead, kEvAdd, 0};
  std::vector<KEvent> events(4);
  const uint64_t syscalls_before = kernel_.stats().syscalls;
  const int n = sys_.Kevent(kqfd_, {&change, 1}, events, 0);
  EXPECT_EQ(kernel_.stats().syscalls, syscalls_before + 1)
      << "one trap registered AND delivered";
  ASSERT_EQ(n, 1);
  EXPECT_EQ(events[0].ident, fd);
}

TEST_F(KqueueCoreTest, ReadAndWriteKnotesAreIndependent) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  ASSERT_EQ(Change(fd, kFiltWrite, kEvAdd), 0);
  EXPECT_EQ(sys_.kqueue_dev(kqfd_)->knote_count(), 2u);
  RunFor(Millis(5));
  // Nothing to read, but the socket is writable: only the write knote fires.
  auto events = Harvest();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].filter, kFiltWrite);
  // Deleting the write knote leaves the read knote registered.
  ASSERT_EQ(Change(fd, kFiltWrite, kEvDelete), 0);
  EXPECT_EQ(sys_.kqueue_dev(kqfd_)->knote_count(), 1u);
  EXPECT_TRUE(sys_.kqueue_dev(kqfd_)->HasKnote(fd, kFiltRead));
  EXPECT_FALSE(sys_.kqueue_dev(kqfd_)->HasKnote(fd, kFiltWrite));
  (void)client;
}

TEST_F(KqueueCoreTest, DeleteUnknownKnoteFails) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(Change(fd, kFiltRead, kEvDelete), -1) << "ENOENT";
  EXPECT_EQ(Change(fd + 100, kFiltRead, kEvAdd), -1) << "EBADF";
  (void)client;
}

// --- EV_CLEAR: the edge-like vs level differential ---------------------------

TEST_F(KqueueCoreTest, LevelKnoteRereportsUnreadData) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  client->Write(Chunk{"unread", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Harvest().size(), 1u);
  ASSERT_EQ(Harvest().size(), 1u) << "level knote re-reports while readable";
  EXPECT_GT(sys_.Read(fd, 100).n, 0u);
  EXPECT_TRUE(Harvest().empty()) << "drained: filter no longer holds";
}

TEST_F(KqueueCoreTest, EvClearReportsOnceUntilNewData) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd | kEvClear), 0);
  client->Write(Chunk{"unread", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Harvest().size(), 1u);
  EXPECT_TRUE(Harvest().empty()) << "EV_CLEAR: state cleared after delivery";
  client->Write(Chunk{"more", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Harvest().size(), 1u) << "fresh activation re-reports";
}

TEST_F(KqueueCoreTest, TruncatedEventlistKeepsRemainderBothModes) {
  // A too-small eventlist must never lose readiness, clear or level.
  for (const uint16_t mode : {static_cast<uint16_t>(0), kEvClear}) {
    SCOPED_TRACE(mode == 0 ? "level" : "ev_clear");
    const int kqfd = sys_.OpenKqueue();
    ASSERT_GE(kqfd, 0);
    std::vector<std::shared_ptr<SimSocket>> clients;
    std::set<int> expected;
    for (int i = 0; i < 4; ++i) {
      auto [client, fd] = EstablishedPair();
      const KEvent change{fd, kFiltRead, static_cast<uint16_t>(kEvAdd | mode), 0};
      ASSERT_EQ(sys_.Kevent(kqfd, {&change, 1}, {}, 0), 0);
      client->Write(Chunk{"x", 0});
      clients.push_back(client);
      expected.insert(fd);
    }
    RunFor(Millis(5));
    std::vector<KEvent> events(2);
    std::set<int> seen;
    ASSERT_EQ(sys_.Kevent(kqfd, {}, events, 0), 2);
    seen.insert(events[0].ident);
    seen.insert(events[1].ident);
    ASSERT_EQ(sys_.Kevent(kqfd, {}, events, 0), 2) << "remainder not lost";
    seen.insert(events[0].ident);
    seen.insert(events[1].ident);
    EXPECT_EQ(seen, expected);
    // Drain server-side so the next iteration starts clean.
    for (int fd : expected) {
      EXPECT_GT(sys_.Read(fd, 100).n, 0u);
      EXPECT_EQ(sys_.Close(fd), 0);
    }
    ASSERT_EQ(sys_.Close(kqfd), 0);
  }
}

// --- oneshot / enable / disable ----------------------------------------------

TEST_F(KqueueCoreTest, OneshotDeletesKnoteAfterDelivery) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd | kEvOneshot), 0);
  client->Write(Chunk{"a", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Harvest().size(), 1u);
  EXPECT_FALSE(sys_.kqueue_dev(kqfd_)->HasKnote(fd, kFiltRead))
      << "EV_ONESHOT deletes, not just disables";
  client->Write(Chunk{"b", 0});
  RunFor(Millis(5));
  EXPECT_TRUE(Harvest().empty());
}

TEST_F(KqueueCoreTest, DisableSilencesEnableRestores) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  ASSERT_EQ(Change(fd, kFiltRead, kEvDisable), 0);
  client->Write(Chunk{"data", 0});
  RunFor(Millis(5));
  EXPECT_TRUE(Harvest().empty()) << "disabled knote stays quiet";
  EXPECT_TRUE(sys_.kqueue_dev(kqfd_)->HasKnote(fd, kFiltRead))
      << "disable keeps the registration";
  ASSERT_EQ(Change(fd, kFiltRead, kEvEnable), 0);
  ASSERT_EQ(Harvest().size(), 1u)
      << "enable probes the filter: pending data reported without a new edge";
}

TEST_F(KqueueCoreTest, ReaddModifiesInPlace) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd | kEvClear), 0);
  // Re-ADD without EV_CLEAR: kqueue semantics modify the existing knote.
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  EXPECT_EQ(sys_.kqueue_dev(kqfd_)->knote_count(), 1u) << "no duplicate knote";
  client->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Harvest().size(), 1u);
  ASSERT_EQ(Harvest().size(), 1u) << "now level-triggered: re-reports";
}

// --- lifecycle / blocking ----------------------------------------------------

TEST_F(KqueueCoreTest, RegistrationProbeSeesExistingData) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"early", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd | kEvClear), 0);
  ASSERT_EQ(Harvest().size(), 1u) << "no arm-race: EV_ADD probes the filter";
}

TEST_F(KqueueCoreTest, ClosedFdKnotesDropAtHarvest) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  client->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  ASSERT_EQ(sys_.Close(fd), 0);  // no EV_DELETE — sloppy application
  EXPECT_TRUE(Harvest().empty());
  EXPECT_EQ(sys_.kqueue_dev(kqfd_)->knote_count(), 0u)
      << "the knote followed the file, not the fd number";
}

TEST_F(KqueueCoreTest, BlockingKeventWokenByArrival) {
  OpenDev();
  ASSERT_EQ(Change(listen_fd_, kFiltRead, kEvAdd), 0);
  sim_.ScheduleAt(Millis(20), [&] { net_.Connect(listener_); });
  std::vector<KEvent> events(4);
  const int n = sys_.Kevent(kqfd_, {}, events, 1000);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(events[0].ident, listen_fd_);
  EXPECT_GE(kernel_.now(), Millis(20));
  EXPECT_LT(kernel_.now(), Millis(100)) << "woken by the SYN, not the timeout";
  EXPECT_GE(kernel_.stats().wait_exclusive_adds, 1u);
}

TEST_F(KqueueCoreTest, AttributionSumEqualsBusyAcrossKqueueTraffic) {
  OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0);
  client->Write(Chunk{"data", 0});
  RunFor(Millis(5));
  ASSERT_EQ(Harvest().size(), 1u);
  kernel_.Charge(Nanos(1), ChargeCat::kOther);  // flush any interrupt debt
  EXPECT_EQ(kernel_.attribution().Sum(), kernel_.busy_time());
  EXPECT_GT(kernel_.attribution()[ChargeCat::kKqRegister], 0);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kKqFilter], 0);
}

TEST_F(KqueueCoreTest, AddEnomemInjectionLeavesNoState) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kInterestEnomem, 0, Millis(10), 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);
  OpenDev();
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(Change(fd, kFiltRead, kEvAdd), kErrNoMem);
  EXPECT_FALSE(sys_.kqueue_dev(kqfd_)->HasKnote(fd, kFiltRead));
  RunFor(Millis(15));
  ASSERT_EQ(Change(fd, kFiltRead, kEvAdd), 0) << "identical retry succeeds";
  (void)client;
}

}  // namespace
}  // namespace scio
