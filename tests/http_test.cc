// Tests for the HTTP layer: incremental request parsing (including the
// byte-at-a-time delivery the inactive-client workload produces), response
// construction, client-side response tracking, and the document store.

#include <gtest/gtest.h>

#include "src/http/http_message.h"
#include "src/http/request_parser.h"
#include "src/http/response_reader.h"
#include "src/http/static_content.h"

namespace scio {
namespace {

// --- RequestParser ----------------------------------------------------------------

TEST(RequestParserTest, ParsesWholeRequest) {
  RequestParser parser;
  EXPECT_EQ(parser.Feed(BuildHttpRequest("/index.html")), RequestParser::State::kComplete);
  EXPECT_EQ(parser.method(), "GET");
  EXPECT_EQ(parser.path(), "/index.html");
  EXPECT_EQ(parser.version(), "HTTP/1.0");
}

TEST(RequestParserTest, LenientAboutBareLf) {
  RequestParser parser;
  EXPECT_EQ(parser.Feed("GET / HTTP/1.0\n\n"), RequestParser::State::kComplete);
  EXPECT_EQ(parser.path(), "/");
}

TEST(RequestParserTest, IncompleteUntilBlankLine) {
  RequestParser parser;
  EXPECT_EQ(parser.Feed("GET /x HTTP/1.0\r\nHost: h\r\n"),
            RequestParser::State::kIncomplete);
  EXPECT_EQ(parser.Feed("\r\n"), RequestParser::State::kComplete);
}

TEST(RequestParserTest, RejectsMalformedRequestLine) {
  const char* bad[] = {
      "GETNOSPACE\r\n\r\n",
      "GET missingversion\r\n\r\n",
      "GET nopath HTTP/1.0\r\n\r\n",     // path must start with /
      "GET /x FTP/1.0\r\n\r\n",          // version must be HTTP/*
      "GET  /double HTTP/1.0\r\n\r\n",   // empty path token
  };
  for (const char* request : bad) {
    RequestParser parser;
    EXPECT_EQ(parser.Feed(request), RequestParser::State::kError) << request;
  }
}

TEST(RequestParserTest, TerminalStatesAreSticky) {
  RequestParser parser;
  parser.Feed(BuildHttpRequest("/a"));
  EXPECT_EQ(parser.Feed("garbage"), RequestParser::State::kComplete);
  EXPECT_EQ(parser.path(), "/a");
}

TEST(RequestParserTest, ResetAllowsReuse) {
  RequestParser parser;
  parser.Feed(BuildHttpRequest("/a"));
  parser.Reset();
  EXPECT_EQ(parser.state(), RequestParser::State::kIncomplete);
  EXPECT_EQ(parser.Feed(BuildHttpRequest("/b")), RequestParser::State::kComplete);
  EXPECT_EQ(parser.path(), "/b");
}

TEST(RequestParserTest, OverlongHeaderIsError) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.0\r\nX: ");
  RequestParser::State state = parser.state();
  for (int i = 0; i < 20 && state == RequestParser::State::kIncomplete; ++i) {
    state = parser.Feed(std::string(1024, 'a'));
  }
  EXPECT_EQ(state, RequestParser::State::kError) << "unbounded header rejected";
}

// Property: the parse result is independent of how the bytes are fragmented.
class RequestParserSplitTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RequestParserSplitTest, FragmentationInvariant) {
  const std::string request = BuildHttpRequest("/some/deep/path.html");
  const size_t chunk = GetParam();
  RequestParser parser;
  RequestParser::State state = RequestParser::State::kIncomplete;
  for (size_t pos = 0; pos < request.size(); pos += chunk) {
    state = parser.Feed(request.substr(pos, chunk));
  }
  EXPECT_EQ(state, RequestParser::State::kComplete);
  EXPECT_EQ(parser.path(), "/some/deep/path.html");
  EXPECT_EQ(parser.version(), "HTTP/1.0");
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, RequestParserSplitTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 64u, 1000u));

// --- responses ---------------------------------------------------------------------

TEST(HttpMessageTest, OkResponseShape) {
  const Chunk response = BuildHttpOkResponse(6144);
  EXPECT_EQ(response.synthetic, 6144u);
  EXPECT_NE(response.data.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.data.find("Content-Length: 6144"), std::string::npos);
  EXPECT_EQ(response.data.substr(response.data.size() - 4), "\r\n\r\n");
}

TEST(HttpMessageTest, NotFoundResponseIsFullyReal) {
  const Chunk response = BuildHttpNotFoundResponse();
  EXPECT_EQ(response.synthetic, 0u);
  EXPECT_NE(response.data.find("404"), std::string::npos);
}

// --- ResponseReader -----------------------------------------------------------------

TEST(ResponseReaderTest, CompletesOnExactLength) {
  const Chunk response = BuildHttpOkResponse(100);
  ResponseReader reader;
  EXPECT_EQ(reader.Feed(response.data, 100), ResponseReader::State::kComplete);
  EXPECT_EQ(reader.status_code(), 200);
  EXPECT_EQ(reader.content_length(), 100u);
  EXPECT_EQ(reader.body_received(), 100u);
}

TEST(ResponseReaderTest, IncompleteBody) {
  const Chunk response = BuildHttpOkResponse(100);
  ResponseReader reader;
  EXPECT_EQ(reader.Feed(response.data, 40), ResponseReader::State::kBody);
  EXPECT_EQ(reader.Feed("", 60), ResponseReader::State::kComplete);
}

TEST(ResponseReaderTest, RealBytesTrailingHeaderCountTowardBody) {
  ResponseReader reader;
  reader.Feed("HTTP/1.0 200 OK\r\nContent-Length: 5\r\n\r\nab", 0);
  EXPECT_EQ(reader.body_received(), 2u);
  EXPECT_EQ(reader.Feed("cde", 0), ResponseReader::State::kComplete);
}

TEST(ResponseReaderTest, RejectsNonHttp) {
  ResponseReader reader;
  EXPECT_EQ(reader.Feed("SMTP/1.0 200\r\n\r\n", 0), ResponseReader::State::kError);
}

TEST(ResponseReaderTest, RejectsSyntheticBytesInsideHeader) {
  ResponseReader reader;
  EXPECT_EQ(reader.Feed("HTTP/1.0 200 OK\r\n", 50), ResponseReader::State::kError);
}

TEST(ResponseReaderTest, ParsesStatusCode) {
  ResponseReader reader;
  reader.Feed("HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n", 0);
  EXPECT_EQ(reader.state(), ResponseReader::State::kComplete);
  EXPECT_EQ(reader.status_code(), 404);
}

class ResponseReaderSplitTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ResponseReaderSplitTest, FragmentationInvariant) {
  const Chunk response = BuildHttpOkResponse(6144);
  const size_t chunk = GetParam();
  ResponseReader reader;
  // Real header fragmented, then synthetic body fragmented.
  for (size_t pos = 0; pos < response.data.size(); pos += chunk) {
    reader.Feed(response.data.substr(pos, chunk), 0);
  }
  size_t body = response.synthetic;
  while (body > 0) {
    const size_t n = body < chunk ? body : chunk;
    reader.Feed("", n);
    body -= n;
  }
  EXPECT_EQ(reader.state(), ResponseReader::State::kComplete);
  EXPECT_EQ(reader.body_received(), 6144u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ResponseReaderSplitTest,
                         ::testing::Values(1u, 3u, 17u, 256u, 8192u));

// --- StaticContent ------------------------------------------------------------------

TEST(StaticContentTest, DefaultDocumentIsSixKilobytes) {
  StaticContent content;
  auto size = content.Lookup("/index.html");
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 6u * 1024u) << "the paper's 6 KB CITI index.html";
}

TEST(StaticContentTest, MissLooksUpNullopt) {
  StaticContent content;
  EXPECT_FALSE(content.Lookup("/missing").has_value());
}

TEST(StaticContentTest, AddAndOverwrite) {
  StaticContent content;
  content.AddDocument("/big", 1 << 20);
  content.AddDocument("/big", 2 << 20);
  EXPECT_EQ(*content.Lookup("/big"), 2u << 20);
  EXPECT_EQ(content.document_count(), 2u);
}

}  // namespace
}  // namespace scio
