// Tests for the metrics module: streaming stats, exact percentiles, the
// httperf-style rate-series reduction, and table/CSV output.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/metrics/percentile.h"
#include "src/metrics/rate_series.h"
#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/sim/rng.h"

namespace scio {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(StreamingStatsTest, KnownValues) {
  StreamingStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);  // classic textbook example
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(StreamingStatsTest, SingleSampleHasZeroVariance) {
  StreamingStats stats;
  stats.Add(42.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 42.0);
  EXPECT_EQ(stats.max(), 42.0);
}

class StatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, MatchesNaiveComputation) {
  Rng rng(GetParam());
  StreamingStats stats;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.UniformReal(-1000, 1000);
    samples.push_back(v);
    stats.Add(v);
  }
  double sum = 0;
  for (double v : samples) {
    sum += v;
  }
  const double mean = sum / static_cast<double>(samples.size());
  double sq = 0;
  for (double v : samples) {
    sq += (v - mean) * (v - mean);
  }
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), sq / static_cast<double>(samples.size()), 1e-6);
  EXPECT_EQ(stats.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(stats.max(), *std::max_element(samples.begin(), samples.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest, ::testing::Values(1ull, 7ull, 99ull));

TEST(PercentileTest, EmptyIsZero) {
  PercentileTracker tracker;
  EXPECT_EQ(tracker.Median(), 0.0);
}

TEST(PercentileTest, ExactOrderStatistics) {
  PercentileTracker tracker;
  for (int i = 100; i >= 1; --i) {
    tracker.Add(i);
  }
  EXPECT_DOUBLE_EQ(tracker.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(tracker.Median(), 50.5);
  EXPECT_NEAR(tracker.Percentile(90), 90.1, 1e-9);
}

TEST(PercentileTest, InterleavedAddAndQuery) {
  PercentileTracker tracker;
  tracker.Add(10);
  tracker.Add(20);
  EXPECT_DOUBLE_EQ(tracker.Median(), 15.0);
  tracker.Add(30);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(tracker.Median(), 20.0);
}

TEST(RateSeriesTest, BucketsAndSummary) {
  RateSeries series(Seconds(1), Seconds(4));
  // 3 events in second 0, 1 in second 2.
  series.Add(Millis(100));
  series.Add(Millis(200));
  series.Add(Millis(900));
  series.Add(Millis(2500));
  const StreamingStats summary = series.Summary();
  EXPECT_EQ(series.total(), 4u);
  EXPECT_EQ(series.bucket_count(), 4u);
  EXPECT_DOUBLE_EQ(summary.mean(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 3.0);
  EXPECT_DOUBLE_EQ(summary.min(), 0.0) << "starved buckets show up as min=0 (FIG 6)";
}

TEST(RateSeriesTest, IgnoresOutOfWindowEvents) {
  RateSeries series(Seconds(1), Seconds(2));
  series.Add(-Millis(5));
  series.Add(Seconds(5));
  EXPECT_EQ(series.total(), 0u);
}

TEST(RateSeriesTest, SubSecondBucketsScaleToPerSecondRates) {
  RateSeries series(Millis(500), Seconds(1));
  series.Add(Millis(100));
  series.Add(Millis(200));
  EXPECT_DOUBLE_EQ(series.Rates()[0], 4.0) << "2 events in 0.5s = 4/s";
}

TEST(RateSeriesTest, NonDivisibleWindowKeepsThePartialBucket) {
  // Regression: a 2.5s window with 1s buckets used to truncate to 2 buckets,
  // silently dropping every event in [2s, 2.5s).
  RateSeries series(Seconds(1), Millis(2500));
  series.Add(Millis(100));
  series.Add(Millis(2100));
  series.Add(Millis(2400));
  EXPECT_EQ(series.bucket_count(), 3u);
  EXPECT_EQ(series.total(), 3u);
  const std::vector<double> rates = series.Rates();
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_DOUBLE_EQ(rates[2], 4.0) << "2 events over the true 0.5s width = 4/s";
}

TEST(RateSeriesTest, NonDivisibleWindowStillIgnoresEventsPastTheWindow) {
  // Events inside the rounded-up final bucket but past the window itself
  // must not inflate the partial bucket.
  RateSeries series(Seconds(1), Millis(2500));
  series.Add(Millis(2600));
  series.Add(Seconds(3));
  EXPECT_EQ(series.total(), 0u);
  EXPECT_DOUBLE_EQ(series.Rates()[2], 0.0);
}

TEST(TableTest, PrintAligns) {
  Table table({"a", "longer"});
  table.AddRow({1.0, 2.5});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table table({"x", "y"});
  table.AddRow({1.25, 3.5}, 2);
  table.AddRow(std::vector<std::string>{"foo", "bar"});
  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_EQ(out.str(), "x,y\n1.25,3.50\nfoo,bar\n");
}

TEST(TableTest, CsvFileFailureReported) {
  Table table({"x"});
  EXPECT_FALSE(table.WriteCsvFile("/nonexistent-dir/file.csv"));
}

}  // namespace
}  // namespace scio
