// FIG 14 of Provos & Lever 2000: median connection time (ms) vs targeted
// request rate with 251 extra inactive connections, for thttpd + /dev/poll,
// stock thttpd (normal poll), and phhttpd.

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 251;
  ApplyCommandLine(argc, argv, &base);

  std::vector<BenchmarkResult> by_server[3];
  const ServerKind kinds[3] = {ServerKind::kThttpdDevPoll, ServerKind::kThttpdPoll,
                               ServerKind::kPhhttpd};
  for (int i = 0; i < 3; ++i) {
    FigureSweepConfig config = base;
    config.figure_id = "fig14_" + ServerKindName(kinds[i]);
    config.title = "median latency (component sweep)";
    config.server = kinds[i];
    by_server[i] = RunFigureSweep(config);
  }

  std::cout << "=== fig14: median connection time in ms, load " << base.inactive
            << " ===\n\n";
  Table table({"rate", "devpoll_ms", "normal_poll_ms", "phhttpd_ms"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow({base.rates[i], by_server[0][i].median_conn_ms,
                  by_server[1][i].median_conn_ms, by_server[2][i].median_conn_ms},
                 2);
  }
  table.Print(std::cout);
  table.WriteCsvFile("fig14.csv");
  std::cout << std::endl;
  return 0;
}
