// MICRO-3: event-engine microbenchmarks — the pooled timer-wheel scheduler
// versus the priority-queue-of-allocations engine it replaced.
//
// Two modes:
//
//   ./bench_micro_engine [out.json]   (default; used by CI)
//       Runs a fixed, deterministic set of timed workloads — schedule/fire
//       steady state and schedule/cancel/fire churn for both engines, plus a
//       quick end-to-end figure sweep — and writes BENCH_engine.json
//       (schema: bench name -> {wall_ms, events_scheduled, allocs}) so
//       future PRs can track the perf trajectory.
//
//   ./bench_micro_engine --gbench [gbench flags...]
//       Runs the google-benchmark suite: schedule/cancel/fire mixes at
//       1e3..1e6 pending events, with and without cancellation churn.
//
// The legacy engine is reproduced locally (a std::priority_queue of entries
// carrying a std::function plus a shared_ptr cancellation block — exactly
// the allocation behaviour src/sim had before the wheel) so the comparison
// stays honest as the real engine evolves.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/load/benchmark_run.h"
#include "src/sim/event_queue.h"

// --- allocation accounting ----------------------------------------------------
// Counts every global operator new so the JSON can record allocs per bench.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  std::abort();
}

void* operator new[](size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  std::abort();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace {

using scio::SimTime;

// --- the legacy engine, reproduced as the baseline ---------------------------

class HeapQueue {
 public:
  struct State {
    bool cancelled = false;
  };

  std::shared_ptr<State> Schedule(SimTime when, std::function<void()> cb) {
    auto state = std::make_shared<State>();
    queue_.push(Entry{when, next_seq_++, std::move(cb), state});
    return state;
  }

  bool RunNext() {
    SkipCancelled();
    if (queue_.empty()) {
      return false;
    }
    Entry entry = queue_.top();
    queue_.pop();
    entry.cb();
    return true;
  }

  bool empty() {
    SkipCancelled();
    return queue_.empty();
  }

  SimTime NextTime() {
    SkipCancelled();
    return queue_.empty() ? 0 : queue_.top().when;
  }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    std::function<void()> cb;
    std::shared_ptr<State> state;
    bool operator>(const Entry& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  void SkipCancelled() {
    while (!queue_.empty() && queue_.top().state->cancelled) {
      queue_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  uint64_t next_seq_ = 0;
};

// --- deterministic workloads -------------------------------------------------

uint64_t XorShift(uint64_t* s) {
  uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

// A callback shaped like the real hot path: captures a pointer and an index.
struct Payload {
  uint64_t* sink;
  uint64_t value;
  void operator()() const { *sink += value; }
};

// Steady state: keep `pending` events in flight; each op schedules a
// replacement a pseudo-random offset ahead, then fires the earliest. The
// clock follows the queue (now = next event time), exactly as the
// Simulator's StepUntil drives it. Returns events scheduled.
template <typename ScheduleFn, typename NextFn, typename FireFn>
uint64_t SteadyMix(size_t pending, uint64_t ops, uint64_t* sink,
                   ScheduleFn schedule, NextFn next, FireFn fire) {
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  uint64_t scheduled = 0;
  for (size_t i = 0; i < pending; ++i) {
    schedule(static_cast<SimTime>(XorShift(&rng) % 1'000'000),
             Payload{sink, ++scheduled});
  }
  for (uint64_t i = 0; i < ops; ++i) {
    const SimTime now = next();
    schedule(now + static_cast<SimTime>(XorShift(&rng) % 1'000'000),
             Payload{sink, ++scheduled});
    fire();
  }
  return scheduled;
}

// Churn: schedule two, cancel one, fire one — cancellation-heavy traffic like
// client timeout timers that almost never expire.
template <typename ScheduleFn, typename NextFn, typename CancelFn, typename FireFn>
uint64_t ChurnMix(size_t pending, uint64_t ops, uint64_t* sink,
                  ScheduleFn schedule, NextFn next, CancelFn cancel, FireFn fire) {
  uint64_t rng = 0x2545f4914f6cdd1dULL;
  uint64_t scheduled = 0;
  for (size_t i = 0; i < pending; ++i) {
    schedule(static_cast<SimTime>(XorShift(&rng) % 1'000'000),
             Payload{sink, ++scheduled});
  }
  for (uint64_t i = 0; i < ops; ++i) {
    const SimTime now = next();
    schedule(now + static_cast<SimTime>(XorShift(&rng) % 1'000'000),
             Payload{sink, ++scheduled});
    auto doomed = schedule(now + static_cast<SimTime>(XorShift(&rng) % 500'000),
                           Payload{sink, ++scheduled});
    cancel(doomed);
    fire();
  }
  return scheduled;
}

uint64_t RunWheelSteady(size_t pending, uint64_t ops, uint64_t* sink) {
  scio::EventQueue q;
  return SteadyMix(
      pending, ops, sink,
      [&](SimTime when, Payload p) { return q.Schedule(when, p); },
      [&] { return q.NextTime(); }, [&] { q.RunNext(); });
}

uint64_t RunHeapSteady(size_t pending, uint64_t ops, uint64_t* sink) {
  HeapQueue q;
  return SteadyMix(
      pending, ops, sink,
      [&](SimTime when, Payload p) { return q.Schedule(when, p); },
      [&] { return q.NextTime(); }, [&] { q.RunNext(); });
}

uint64_t RunWheelChurn(size_t pending, uint64_t ops, uint64_t* sink) {
  scio::EventQueue q;
  return ChurnMix(
      pending, ops, sink,
      [&](SimTime when, Payload p) { return q.Schedule(when, p); },
      [&] { return q.NextTime(); },
      [](scio::EventHandle h) { h.Cancel(); }, [&] { q.RunNext(); });
}

uint64_t RunHeapChurn(size_t pending, uint64_t ops, uint64_t* sink) {
  HeapQueue q;
  return ChurnMix(
      pending, ops, sink,
      [&](SimTime when, Payload p) { return q.Schedule(when, p); },
      [&] { return q.NextTime(); },
      [](const std::shared_ptr<HeapQueue::State>& s) { s->cancelled = true; },
      [&] { q.RunNext(); });
}

// --- google-benchmark suite --------------------------------------------------

void BM_WheelScheduleFire(benchmark::State& state) {
  const auto pending = static_cast<size_t>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWheelSteady(pending, pending, &sink));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pending) * 2);
}
BENCHMARK(BM_WheelScheduleFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_HeapScheduleFire(benchmark::State& state) {
  const auto pending = static_cast<size_t>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunHeapSteady(pending, pending, &sink));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pending) * 2);
}
BENCHMARK(BM_HeapScheduleFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_WheelChurn(benchmark::State& state) {
  const auto pending = static_cast<size_t>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWheelChurn(pending, pending, &sink));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pending) * 2);
}
BENCHMARK(BM_WheelChurn)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_HeapChurn(benchmark::State& state) {
  const auto pending = static_cast<size_t>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunHeapChurn(pending, pending, &sink));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pending) * 2);
}
BENCHMARK(BM_HeapChurn)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// --- JSON perf-trajectory mode -----------------------------------------------

struct TimedResult {
  std::string name;
  double wall_ms = 0;
  uint64_t events_scheduled = 0;
  uint64_t allocs = 0;
};

template <typename Fn>
TimedResult Timed(const std::string& name, Fn fn) {
  TimedResult r;
  r.name = name;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  r.events_scheduled = fn();
  const auto end = std::chrono::steady_clock::now();
  r.allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return r;
}

uint64_t RunQuickFigureSweep() {
  // A miniature fig04-shaped run: enough simulated traffic to exercise the
  // whole stack, small enough to keep the CI timing step fast.
  scio::BenchmarkRunConfig config;
  config.server = scio::ServerKind::kThttpdPoll;
  config.active.request_rate = 700.0;
  config.active.duration = scio::Seconds(4);
  config.inactive.connections = 64;
  uint64_t events = 0;
  const scio::BenchmarkResult result = scio::RunBenchmark(config);
  events += result.attempts + result.successes;
  return events;
}

int JsonMain(const char* out_path) {
  constexpr size_t kPending = 1 << 17;  // ~131k pending events
  constexpr uint64_t kOps = 1 << 21;    // ~2.1M schedule/fire pairs
  uint64_t sink = 0;

  std::vector<TimedResult> results;
  results.push_back(Timed("wheel_schedule_fire",
                          [&] { return RunWheelSteady(kPending, kOps, &sink); }));
  results.push_back(Timed("heap_schedule_fire",
                          [&] { return RunHeapSteady(kPending, kOps, &sink); }));
  results.push_back(Timed("wheel_churn_cancel",
                          [&] { return RunWheelChurn(kPending, kOps / 2, &sink); }));
  results.push_back(Timed("heap_churn_cancel",
                          [&] { return RunHeapChurn(kPending, kOps / 2, &sink); }));
  results.push_back(Timed("figure_sweep_quick", [] { return RunQuickFigureSweep(); }));

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const TimedResult& r = results[i];
    std::fprintf(f,
                 "  \"%s\": {\"wall_ms\": %.3f, \"events_scheduled\": %llu, "
                 "\"allocs\": %llu}%s\n",
                 r.name.c_str(), r.wall_ms,
                 static_cast<unsigned long long>(r.events_scheduled),
                 static_cast<unsigned long long>(r.allocs),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);

  for (const TimedResult& r : results) {
    std::printf("%-22s %10.3f ms  %12llu events  %12llu allocs\n", r.name.c_str(),
                r.wall_ms, static_cast<unsigned long long>(r.events_scheduled),
                static_cast<unsigned long long>(r.allocs));
  }
  std::printf("steady speedup (heap/wheel): %.2fx\n",
              results[1].wall_ms / results[0].wall_ms);
  std::printf("churn  speedup (heap/wheel): %.2fx\n",
              results[3].wall_ms / results[2].wall_ms);
  std::printf("(json written to %s)\n", out_path);
  (void)sink;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
    argv[1] = argv[0];
    ++argv;
    --argc;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  return JsonMain(out_path);
}
