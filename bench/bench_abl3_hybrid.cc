// ABL-3: the paper's imagined hybrid server (§4) — RT signals for latency at
// light load, /dev/poll for throughput under pressure, switching on RT queue
// occupancy — against pure phhttpd and pure thttpd+/dev/poll.

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 251;
  ApplyCommandLine(argc, argv, &base);

  const ServerKind kinds[3] = {ServerKind::kPhhttpd, ServerKind::kThttpdDevPoll,
                               ServerKind::kHybrid};
  std::vector<BenchmarkResult> results[3];
  for (int i = 0; i < 3; ++i) {
    FigureSweepConfig config = base;
    config.figure_id = std::string("abl3_") + ServerKindName(kinds[i]);
    config.title = "hybrid crossover";
    config.server = kinds[i];
    results[i] = RunFigureSweep(config);
  }

  std::cout << "=== abl3 summary: avg reply / median ms / mode switches ===\n\n";
  Table table({"rate", "phhttpd_avg", "devpoll_avg", "hybrid_avg", "phhttpd_ms",
               "devpoll_ms", "hybrid_ms", "hybrid_switches"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow({base.rates[i], results[0][i].reply_avg, results[1][i].reply_avg,
                  results[2][i].reply_avg, results[0][i].median_conn_ms,
                  results[1][i].median_conn_ms, results[2][i].median_conn_ms,
                  static_cast<double>(results[2][i].hybrid_mode_switches)},
                 1);
  }
  table.Print(std::cout);
  table.WriteCsvFile("abl3_hybrid.csv");
  return 0;
}
