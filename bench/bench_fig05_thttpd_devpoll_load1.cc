// FIG 05 of Provos & Lever 2000: thttpd + /dev/poll, 1 inactive connection.
// Prints avg/min/max/stddev reply rate vs targeted request rate.

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  scio::FigureSweepConfig config;
  config.figure_id = "fig05";
  config.title = "thttpd + /dev/poll, 1 inactive connection";
  config.server = scio::ServerKind::kThttpdDevPoll;
  config.inactive = 1;
  scio::ApplyCommandLine(argc, argv, &config);
  scio::RunFigureSweep(config);
  return 0;
}
