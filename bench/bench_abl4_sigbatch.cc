// ABL-4: the sigtimedwait4() batch-dequeue extension (§6 future work) — how
// much does dequeuing signals in groups instead of singly help a
// signal-driven server? Measured with the hybrid server pinned to signal
// mode (watermarks set so it never switches), batch sizes 1/8/32/128.

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 251;
  ApplyCommandLine(argc, argv, &base);

  const int batches[] = {1, 8, 32, 128};
  std::vector<BenchmarkResult> results[4];
  for (int i = 0; i < 4; ++i) {
    FigureSweepConfig config = base;
    config.figure_id = "abl4_batch" + std::to_string(batches[i]);
    config.title = "sigtimedwait4 batch size";
    config.server = ServerKind::kHybrid;
    config.base.hybrid_config.signal_batch = batches[i];
    // Pin to signal mode: switching threshold above the queue maximum.
    config.base.hybrid_config.policy.high_watermark = 2.0;
    results[i] = RunFigureSweep(config);
  }

  std::cout << "=== abl4 summary: avg reply rate by batch size ===\n\n";
  Table table({"rate", "batch1", "batch8", "batch32", "batch128", "syscalls_b1",
               "syscalls_b128"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow({base.rates[i], results[0][i].reply_avg, results[1][i].reply_avg,
                  results[2][i].reply_avg, results[3][i].reply_avg,
                  static_cast<double>(results[0][i].kernel_stats.syscalls),
                  static_cast<double>(results[3][i].kernel_stats.syscalls)},
                 0);
  }
  table.Print(std::cout);
  table.WriteCsvFile("abl4_sigbatch.csv");
  return 0;
}
