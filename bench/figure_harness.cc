#include "bench/figure_harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/metrics/table.h"

namespace scio {

void ApplyCommandLine(int argc, char** argv, FigureSweepConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rates=", 0) == 0) {
      config->rates.clear();
      std::stringstream ss(arg.substr(8));
      std::string item;
      while (std::getline(ss, item, ',')) {
        config->rates.push_back(std::atof(item.c_str()));
      }
    } else if (arg.rfind("--duration=", 0) == 0) {
      config->duration = SecondsF(std::atof(arg.c_str() + 11));
    } else if (arg.rfind("--inactive=", 0) == 0) {
      config->inactive = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config->seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg == "--quick") {
      config->duration = Seconds(4);
      config->rates = {500, 700, 900, 1100};
    }
  }
}

std::vector<BenchmarkResult> RunFigureSweep(const FigureSweepConfig& config) {
  std::cout << "=== " << config.figure_id << ": " << config.title << " ===\n";
  std::cout << "server=" << ServerKindName(config.server) << " inactive=" << config.inactive
            << " duration=" << ToSeconds(config.duration) << "s\n\n";

  Table table({"rate", "reply_avg", "reply_min", "reply_max", "reply_sd", "err_pct",
               "median_ms", "p90_ms"});
  // The CSV carries the console columns plus the per-category virtual-CPU
  // breakdown (milliseconds charged per ChargeCat) — the console table stays
  // as the paper-figure series.
  std::vector<std::string> csv_headers = {"rate",      "reply_avg", "reply_min",
                                          "reply_max", "reply_sd",  "err_pct",
                                          "median_ms", "p90_ms"};
  for (size_t i = 0; i < kChargeCatCount; ++i) {
    csv_headers.push_back(std::string("t_") +
                          ChargeCatName(static_cast<ChargeCat>(i)) + "_ms");
  }
  Table csv_table(std::move(csv_headers));
  std::vector<BenchmarkResult> results;
  for (double rate : config.rates) {
    BenchmarkRunConfig run = config.base;
    run.server = config.server;
    run.active.request_rate = rate;
    run.active.duration = config.duration;
    run.active.seed = config.seed + static_cast<uint64_t>(rate);
    run.inactive.connections = config.inactive;
    run.inactive.seed = config.seed * 31 + static_cast<uint64_t>(rate);
    run.sample_width = config.sample_width;
    BenchmarkResult result = RunBenchmark(run);
    results.push_back(result);
    table.AddRow({rate, result.reply_avg, result.reply_min, result.reply_max,
                  result.reply_stddev, result.error_pct, result.median_conn_ms,
                  result.p90_conn_ms});
    // Shared columns keep the console precision (so they stay comparable
    // against historical CSVs cell for cell); the breakdown columns carry
    // more digits because small categories round to 0.0 at one decimal.
    std::vector<std::string> csv_row;
    auto fmt = [&csv_row](double v, int precision) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(precision) << v;
      csv_row.push_back(os.str());
    };
    for (double v : {rate, result.reply_avg, result.reply_min, result.reply_max,
                     result.reply_stddev, result.error_pct,
                     result.median_conn_ms, result.p90_conn_ms}) {
      fmt(v, 1);
    }
    for (size_t i = 0; i < kChargeCatCount; ++i) {
      fmt(ToMillis(result.attribution[static_cast<ChargeCat>(i)]), 3);
    }
    csv_table.AddRow(std::move(csv_row));
  }
  table.Print(std::cout);
  const std::string csv = config.figure_id + ".csv";
  if (csv_table.WriteCsvFile(csv)) {
    std::cout << "\n(csv written to " << csv << ")\n";
  }
  std::cout << std::endl;
  return results;
}

}  // namespace scio
