// Diagnostic: one benchmark point with full kernel/server counter dumps.
// Used to attribute virtual-CPU spending while calibrating the cost model.
//
// --attribution adds the per-category virtual-CPU ledger (with the
// sum==busy-time invariant checked), --trace=FILE attaches a flight recorder
// and writes Chrome trace-event JSON (load it in about:tracing or Perfetto)
// plus the per-phase breakdown table.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/load/benchmark_run.h"
#include "src/metrics/table.h"
#include "src/trace/flight_recorder.h"

int main(int argc, char** argv) {
  using namespace scio;
  BenchmarkRunConfig config;
  config.server = ServerKind::kThttpdPoll;
  config.active.request_rate = 500;
  config.active.duration = Seconds(4);
  config.inactive.connections = 501;

  bool show_attribution = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--server=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "poll") {
        config.server = ServerKind::kThttpdPoll;
      } else if (name == "devpoll") {
        config.server = ServerKind::kThttpdDevPoll;
      } else if (name == "phhttpd") {
        config.server = ServerKind::kPhhttpd;
      } else if (name == "hybrid") {
        config.server = ServerKind::kHybrid;
      }
    } else if (arg.rfind("--rate=", 0) == 0) {
      config.active.request_rate = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--inactive=", 0) == 0) {
      config.inactive.connections = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--duration=", 0) == 0) {
      config.active.duration = SecondsF(std::atof(arg.c_str() + 11));
    } else if (arg.rfind("--trickle-ms=", 0) == 0) {
      config.inactive.trickle_interval = MillisF(std::atof(arg.c_str() + 13));
    } else if (arg == "--attribution") {
      show_attribution = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    }
  }

  FlightRecorder recorder;
  if (!trace_path.empty()) {
    if (!kFlightRecorderCompiledIn) {
      std::cerr << "--trace: built with SCIO_DISABLE_TRACE; no events will be "
                   "recorded\n";
    }
    config.recorder = &recorder;
  }

  const BenchmarkResult r = RunBenchmark(config);
  std::cout << "server=" << ServerKindName(config.server)
            << " rate=" << config.active.request_rate
            << " inactive=" << config.inactive.connections << "\n";
  std::cout << "reply avg/min/max/sd: " << r.reply_avg << " / " << r.reply_min << " / "
            << r.reply_max << " / " << r.reply_stddev << "\n";
  std::cout << "attempts=" << r.attempts << " ok=" << r.successes << " err=" << r.errors
            << " pending=" << r.pending << " err_pct=" << r.error_pct << "\n";
  std::cout << "median_ms=" << r.median_conn_ms << " p90_ms=" << r.p90_conn_ms << "\n";
  std::cout << "inactive reconnects=" << r.inactive_reconnects
            << " trickle_bytes=" << r.trickle_bytes << "\n";
  std::cout << "server: accepted=" << r.server_stats.connections_accepted
            << " responses=" << r.server_stats.responses_sent
            << " loops=" << r.server_stats.loop_iterations
            << " stale=" << r.server_stats.stale_events
            << " idle_timeouts=" << r.server_stats.idle_timeouts
            << " overflow_recoveries=" << r.server_stats.overflow_recoveries
            << " mode_switches=" << r.server_stats.mode_switches << "\n";
  std::cout << "phhttpd_poll_fallback=" << r.phhttpd_fell_back_to_poll
            << " cpu_utilization=" << r.cpu_utilization
            << " rt_queue_peak=" << r.rt_queue_peak << "\n\n";
  for (const auto& [name, value] : r.kernel_stats.ToRows()) {
    if (value != 0) {
      std::cout << "  " << name << " = " << value << "\n";
    }
  }

  if (show_attribution || !trace_path.empty()) {
    std::cout << "\n--- virtual-CPU attribution (ms charged) ---\n";
    for (const auto& [name, ns] : r.attribution.ToRows()) {
      if (ns != 0) {
        std::cout << "  " << name << " = " << ToMillis(ns) << "\n";
      }
    }
    std::cout << "  TOTAL = " << ToMillis(r.attribution.Sum())
              << " (busy = " << ToMillis(r.busy_time) << ")\n";
    if (r.attribution.Sum() != r.busy_time) {
      std::cerr << "ATTRIBUTION INVARIANT VIOLATED: sum "
                << r.attribution.Sum() << " != busy " << r.busy_time << "\n";
      return 1;
    }
  }

  if (!trace_path.empty()) {
    std::cout << "\n--- flight recorder ---\n";
    std::cout << "events held=" << recorder.size()
              << " recorded=" << recorder.total_recorded()
              << " dropped=" << recorder.dropped() << "\n";
    recorder.PhaseBreakdown().Print(std::cout);
    if (recorder.WriteChromeTraceFile(trace_path)) {
      std::cout << "(chrome trace written to " << trace_path << ")\n";
    } else {
      std::cerr << "failed to write " << trace_path << "\n";
      return 1;
    }
  }
  return 0;
}
