// FIG 09 of Provos & Lever 2000: thttpd + /dev/poll, 501 inactive connections.
// Prints avg/min/max/stddev reply rate vs targeted request rate.

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  scio::FigureSweepConfig config;
  config.figure_id = "fig09";
  config.title = "thttpd + /dev/poll, 501 inactive connections";
  config.server = scio::ServerKind::kThttpdDevPoll;
  config.inactive = 501;
  scio::ApplyCommandLine(argc, argv, &config);
  scio::RunFigureSweep(config);
  return 0;
}
