// MICRO-2: google-benchmark microbenchmarks of the in-kernel interest-set
// hash table (§3.1) — insert/lookup/erase cost versus set size, and the cost
// of the paper's doubling growth rule.

#include <benchmark/benchmark.h>

#include "src/core/interest_table.h"

namespace {

void BM_InsertSequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    scio::InterestHashTable table;
    for (int fd = 0; fd < n; ++fd) {
      bool inserted;
      benchmark::DoNotOptimize(table.FindOrInsert(fd, &inserted));
    }
    benchmark::DoNotOptimize(table.bucket_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InsertSequential)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);

void BM_Lookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  scio::InterestHashTable table;
  for (int fd = 0; fd < n; ++fd) {
    bool inserted;
    table.FindOrInsert(fd, &inserted);
  }
  int fd = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(fd));
    fd = (fd + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lookup)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);

void BM_ChurnInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  scio::InterestHashTable table;
  for (int fd = 0; fd < n; ++fd) {
    bool inserted;
    table.FindOrInsert(fd, &inserted);
  }
  int fd = n;
  for (auto _ : state) {
    bool inserted;
    table.FindOrInsert(fd, &inserted);
    table.Erase(fd - n);  // keep the population constant
    ++fd;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChurnInsertErase)->Arg(512)->Arg(4096);

void BM_FullScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  scio::InterestHashTable table;
  for (int fd = 0; fd < n; ++fd) {
    bool inserted;
    table.FindOrInsert(fd, &inserted);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    table.ForEach([&](scio::Interest& interest) { sum += static_cast<uint64_t>(interest.fd); });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullScan)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);

}  // namespace

BENCHMARK_MAIN();
