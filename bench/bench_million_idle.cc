// Million-idle-connection sweep: the scalability wall the per-connection
// storage rebuild exists to move.
//
// For each event core (poll, /dev/poll, RT-signal, hybrid) and each
// population point (10k -> 1M idle connections), a paced fleet of clients
// connects and then goes silent — no requests, no trickle. The server idles
// across its periodic sweeps for a fixed window while two things are
// measured:
//
//   CPU shape   — where the idle window's virtual CPU went (wait-machinery
//                 scan cost vs timer sweeps vs loop overhead). This is the
//                 paper's poll-does-not-scale curve pushed three decades up.
//   bytes/conn  — MemLedger bytes per open connection across the descriptor
//                 table, connection slab, and interest structures. Gate:
//                 <= 256 tracked bytes per idle connection at every point,
//                 with the ledger's Sum()==total invariant intact and the
//                 fd-table / conn-slab rows cross-checked against the
//                 structures' own tracked_bytes() self-reports.
//
// The grown event cores (epoll, kqueue) additionally run with the transport
// plane attached ("+tp" rows): every idle connection then carries a cold TCP
// block and a socket backpointer on the kTransport ledger row — which is
// cross-checked against the plane's own tracked_bytes() and must fit under
// the same 256-byte gate (idle connections never allocate hot blocks or
// retransmit-queue slots).
//
// Determinism gate: every point runs twice and the full signature (memory
// ledger, time-attribution ledger, busy time, loop iterations, population)
// must match byte for byte. The fleet is self-paced — the next connect batch
// launches only when the previous one is fully established — so the ramp
// adapts to each core's speed without ever refusing a connection.
//
// Usage: bench_million_idle [--quick] [--json=FILE]
//   --quick   10k/100k points only (CI smoke); full mode adds the 1M point.
//   exit code: number of gate failures (0 = all green).

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/load/benchmark_run.h"
#include "src/metrics/table.h"
#include "src/net/listener.h"
#include "src/net/net_stack.h"

namespace scio {
namespace {

constexpr size_t kBytesPerConnGate = 256;
constexpr SimDuration kIdleWindow = Seconds(10);
constexpr size_t kConnectBatch = 2048;
constexpr SimDuration kBatchGap = Millis(10);

// A fleet of connections that connect and then never speak: each member
// holds its socket open and silent. Batches are launched back-to-back, the
// next one scheduled only once the server has *accepted* every member of the
// previous batch — handshake completion fires at SYN-ACK, before accept, so
// pacing on it alone would flood the accept backlog on a slow core.
class IdleFleet {
 public:
  IdleFleet(NetStack* net, std::shared_ptr<SimListener> listener,
            const ServerStats* stats, size_t target)
      : net_(net), listener_(std::move(listener)), stats_(stats), target_(target) {
    members_.reserve(target);
  }

  void Start() { LaunchBatch(); }

  size_t connected() const { return connected_; }
  size_t refused() const { return refused_; }
  bool done() const {
    return launched_ >= target_ && pending_ == 0 && ServerDrainedBatch();
  }

  void Shutdown() {
    for (auto& socket : members_) {
      if (socket != nullptr) {
        socket->Close();
      }
    }
    members_.clear();
  }

 private:
  void LaunchBatch() {
    const size_t count = std::min(kConnectBatch, target_ - launched_);
    launched_ += count;
    pending_ += count;
    for (size_t i = 0; i < count; ++i) {
      std::shared_ptr<SimSocket> socket = net_->Connect(listener_);
      if (socket == nullptr) {
        ++refused_;  // port space exhausted; counted, not retried
        --pending_;
        continue;
      }
      socket->on_connected = [this] { OnEstablished(); };
      socket->on_refused = [this] {
        ++refused_;
        --pending_;
        MaybeScheduleNext();
      };
      members_.push_back(std::move(socket));
    }
    MaybeScheduleNext();
  }

  void OnEstablished() {
    ++connected_;
    --pending_;
    MaybeScheduleNext();
  }

  void MaybeScheduleNext() {
    if (pending_ != 0 || launched_ >= target_) {
      return;
    }
    ScheduleDrainCheck();
  }

  // True once the server has accepted everything launched so far (refused
  // members never reach the accept queue).
  bool ServerDrainedBatch() const {
    return stats_->connections_accepted >= launched_ - refused_;
  }

  // The next batch waits for the accept backlog to drain, polling on the
  // batch-gap cadence; the check is a pure function of simulation state, so
  // double runs replay the ramp exactly.
  void ScheduleDrainCheck() {
    net_->kernel()->sim().ScheduleAfter(kBatchGap, [this] {
      if (ServerDrainedBatch()) {
        LaunchBatch();
      } else {
        ScheduleDrainCheck();
      }
    });
  }

  NetStack* net_;
  std::shared_ptr<SimListener> listener_;
  const ServerStats* stats_;
  size_t target_;
  std::vector<std::shared_ptr<SimSocket>> members_;
  size_t launched_ = 0;
  size_t connected_ = 0;
  size_t pending_ = 0;
  size_t refused_ = 0;
};

struct PointResult {
  bool setup_ok = false;
  size_t target = 0;
  size_t open = 0;
  size_t refused = 0;
  // Tracked bytes at the idle plateau.
  uint64_t fd_bytes = 0;
  uint64_t conn_bytes = 0;
  uint64_t interest_bytes = 0;
  uint64_t timer_bytes = 0;
  uint64_t buffer_bytes = 0;
  uint64_t transport_bytes = 0;
  double bytes_per_conn = 0;
  bool ledger_consistent = false;
  bool crosscheck_ok = false;
  // CPU shape over the idle window.
  SimDuration window_busy = 0;
  double idle_cpu_pct = 0;
  SimDuration t_wait = 0;   // wait-machinery scan cost (the paper's curve)
  SimDuration t_sweep = 0;  // periodic timeout sweeps
  SimDuration t_loop = 0;   // loop overhead
  SimDuration t_other = 0;
  uint64_t window_iterations = 0;
  bool attribution_ok = false;
  std::string signature;
};

PointResult RunPoint(ServerKind kind, size_t target, bool with_transport) {
  PointResult r;
  r.target = target;

  Simulator sim;
  SimKernel kernel(&sim);
  NetConfig net_config;
  net_config.client_port_count = static_cast<int>(target) + 8192;
  NetStack net(&kernel, net_config);

  // Headroom above the population so the pressure ladder never engages:
  // target / max_fds must stay below the low watermark.
  const int max_fds = static_cast<int>(target + target / 2 + 64);
  Process& proc = kernel.CreateProcess("server", max_fds);
  Sys sys(&kernel, &proc, &net);
  // Declared before the server so it outlives the server's sockets; their
  // destructors detach from the plane.
  std::unique_ptr<TransportPlane> transport;
  if (with_transport) {
    TransportConfig tp_config;
    tp_config.max_connections = target + 8192;
    transport = std::make_unique<TransportPlane>(&kernel, &net, tp_config);
  }
  StaticContent content;
  content.AddDocument("/index.html", 6 * 1024);

  ServerConfig server_config;
  server_config.listen_backlog = static_cast<int>(kConnectBatch) * 2;
  server_config.syn_backlog.max_half_open = static_cast<int>(kConnectBatch) * 2;
  // The fleet is idle by design; only the sweep machinery should tick.
  server_config.idle_timeout = Seconds(1000000);

  bool setup_ok = true;
  std::unique_ptr<HttpServerBase> server;
  switch (kind) {
    case ServerKind::kThttpdPoll:
      server = std::make_unique<ThttpdPoll>(&sys, &content, server_config,
                                            PollSyscallOptions{});
      setup_ok = server->Setup() >= 0;
      break;
    case ServerKind::kThttpdDevPoll: {
      auto s = std::make_unique<ThttpdDevPoll>(&sys, &content, server_config,
                                               ThttpdDevPollConfig{});
      setup_ok = s->Setup() >= 0 && s->SetupDevPoll() >= 0;
      server = std::move(s);
      break;
    }
    case ServerKind::kPhhttpd: {
      auto s = std::make_unique<Phhttpd>(&sys, &content, server_config,
                                         PhhttpdConfig{});
      setup_ok = s->Setup() >= 0;
      if (setup_ok) {
        s->SetupSignals();
      }
      server = std::move(s);
      break;
    }
    case ServerKind::kHybrid: {
      auto s = std::make_unique<HybridServer>(&sys, &content, server_config,
                                              ThttpdDevPollConfig{},
                                              HybridServerConfig{});
      setup_ok = s->Setup() >= 0 && s->SetupDevPoll() >= 0;
      if (setup_ok) {
        s->SetupHybrid();
      }
      server = std::move(s);
      break;
    }
    case ServerKind::kThttpdEpoll:
    case ServerKind::kThttpdEpollEt: {
      ThttpdEpollConfig ep;
      ep.edge_triggered = kind == ServerKind::kThttpdEpollEt;
      auto s = std::make_unique<ThttpdEpoll>(&sys, &content, server_config, ep);
      setup_ok = s->Setup() >= 0 && s->SetupEpoll() >= 0;
      server = std::move(s);
      break;
    }
    case ServerKind::kPhhttpdKqueue: {
      auto s = std::make_unique<PhhttpdKqueue>(&sys, &content, server_config,
                                               PhhttpdKqueueConfig{});
      setup_ok = s->Setup() >= 0 && s->SetupKqueue() >= 0;
      server = std::move(s);
      break;
    }
  }
  if (!setup_ok) {
    return r;
  }
  r.setup_ok = true;

  IdleFleet fleet(&net, sys.listener(server->listener_fd()), &server->stats(),
                  target);
  fleet.Start();

  // Ramp: run in one-second slices until the whole fleet is established.
  // Self-pacing makes the slice count a pure function of the core's speed,
  // so double runs replay it exactly.
  const SimTime ramp_cap = Seconds(100000);
  while (!fleet.done() && kernel.now() < ramp_cap && !kernel.stopped()) {
    server->Run(kernel.now() + Seconds(1));
  }
  r.open = server->open_connections();
  r.refused = fleet.refused();

  // Memory plateau: every structure is at its idle-state footprint.
  const MemLedger mem_at_plateau = kernel.mem();
  r.fd_bytes = mem_at_plateau[MemSys::kFdTable];
  r.conn_bytes = mem_at_plateau[MemSys::kConns];
  r.interest_bytes = mem_at_plateau[MemSys::kInterests];
  r.timer_bytes = mem_at_plateau[MemSys::kTimers];
  r.buffer_bytes = mem_at_plateau[MemSys::kBuffers];
  r.transport_bytes = mem_at_plateau[MemSys::kTransport];
  r.ledger_consistent = mem_at_plateau.Consistent();
  r.crosscheck_ok = mem_at_plateau[MemSys::kFdTable] == proc.fds().tracked_bytes() &&
                    mem_at_plateau[MemSys::kConns] == server->conn_table_bytes() &&
                    (transport == nullptr ||
                     (mem_at_plateau[MemSys::kTransport] == transport->tracked_bytes() &&
                      transport->live_hot() == 0 && transport->live_segments() == 0));
  r.bytes_per_conn =
      r.open == 0 ? 0.0
                  : static_cast<double>(r.fd_bytes + r.conn_bytes + r.interest_bytes +
                                        r.transport_bytes) /
                        static_cast<double>(r.open);

  // Idle window: the population holds still; only the wait machinery and
  // the sweeps burn CPU.
  const SimDuration busy_before = kernel.busy_time();
  const TimeAttribution attr_before = kernel.attribution();
  const uint64_t iters_before = server->stats().loop_iterations;
  server->Run(kernel.now() + kIdleWindow);
  const TimeAttribution& attr = kernel.attribution();
  r.window_busy = kernel.busy_time() - busy_before;
  r.idle_cpu_pct = 100.0 * static_cast<double>(r.window_busy) /
                   static_cast<double>(kIdleWindow);
  r.window_iterations = server->stats().loop_iterations - iters_before;
  const auto delta = [&](ChargeCat cat) { return attr[cat] - attr_before[cat]; };
  r.t_wait = delta(ChargeCat::kPollfdCopyin) + delta(ChargeCat::kDriverPoll) +
             delta(ChargeCat::kWaitqueue) + delta(ChargeCat::kResultCopyout) +
             delta(ChargeCat::kDevpollScan) + delta(ChargeCat::kSignalDequeue) +
             delta(ChargeCat::kPollfdRebuild) + delta(ChargeCat::kEpollCtl) +
             delta(ChargeCat::kEpollReady) + delta(ChargeCat::kEpollWait) +
             delta(ChargeCat::kKqRegister) + delta(ChargeCat::kKqFilter);
  r.t_sweep = delta(ChargeCat::kTimerSweep);
  r.t_loop = delta(ChargeCat::kServerLoop);
  r.t_other = r.window_busy - r.t_wait - r.t_sweep - r.t_loop;
  r.attribution_ok = attr.Sum() == kernel.busy_time();

  std::ostringstream sig;
  sig << kernel.mem().Signature() << '|' << attr.Signature() << '|'
      << kernel.busy_time() << '|' << kernel.now() << '|'
      << server->stats().loop_iterations << '|'
      << server->stats().connections_accepted << '|' << r.open;
  r.signature = sig.str();

  fleet.Shutdown();
  kernel.RequestStop();
  sim.DiscardPending();
  return r;
}

std::string Fixed(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

void AppendJson(std::ostringstream& out, const std::string& label,
                const PointResult& r, bool identical, bool* first) {
  if (!*first) {
    out << ",\n";
  }
  *first = false;
  out << "    {\"server\": \"" << label << "\", "
      << "\"connections\": " << r.target << ", "
      << "\"open\": " << r.open << ", "
      << "\"bytes_per_conn\": " << Fixed(r.bytes_per_conn, 1) << ", "
      << "\"fd_table_bytes\": " << r.fd_bytes << ", "
      << "\"conn_bytes\": " << r.conn_bytes << ", "
      << "\"interest_bytes\": " << r.interest_bytes << ", "
      << "\"transport_bytes\": " << r.transport_bytes << ", "
      << "\"idle_cpu_pct\": " << Fixed(r.idle_cpu_pct, 3) << ", "
      << "\"wait_ms\": " << Fixed(ToMillis(r.t_wait), 2) << ", "
      << "\"sweep_ms\": " << Fixed(ToMillis(r.t_sweep), 2) << ", "
      << "\"loop_ms\": " << Fixed(ToMillis(r.t_loop), 2) << ", "
      << "\"window_iterations\": " << r.window_iterations << ", "
      << "\"deterministic\": " << (identical ? "true" : "false") << "}";
}

}  // namespace
}  // namespace scio

int main(int argc, char** argv) {
  using namespace scio;

  bool quick = false;
  std::string json_path = "BENCH_million_idle.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::vector<size_t> points = {10'000, 100'000};
  if (!quick) {
    points.push_back(1'000'000);
  }
  // Every core runs bare; the grown cores also run with the transport plane
  // attached, which adds a kTransport ledger row per idle connection.
  struct Leg {
    ServerKind kind;
    bool with_transport;
  };
  const std::vector<Leg> legs = {
      {ServerKind::kThttpdPoll, false},  {ServerKind::kThttpdDevPoll, false},
      {ServerKind::kPhhttpd, false},     {ServerKind::kHybrid, false},
      {ServerKind::kThttpdEpoll, false}, {ServerKind::kPhhttpdKqueue, false},
      {ServerKind::kThttpdEpoll, true},  {ServerKind::kPhhttpdKqueue, true}};

  std::cout << "=== million-idle sweep: CPU shape + bytes/connection"
            << (quick ? " (quick)" : "") << " ===\n\n";
  Table table({"server", "conns", "open", "bytes_per_conn", "fd_b", "conn_b",
               "int_b", "tp_b", "idle_cpu_pct", "wait_ms", "sweep_ms",
               "loop_ms", "iters", "verdict"});

  int failures = 0;
  std::ostringstream json;
  json << "{\n  \"gate_bytes_per_conn\": " << kBytesPerConnGate
       << ",\n  \"results\": [\n";
  bool first_row = true;

  for (const Leg& leg : legs) {
    const std::string label =
        ServerKindName(leg.kind) + (leg.with_transport ? "+tp" : "");
    for (size_t n : points) {
      const PointResult a = RunPoint(leg.kind, n, leg.with_transport);
      const PointResult b = RunPoint(leg.kind, n, leg.with_transport);
      const bool identical = a.signature == b.signature;

      bool ok = true;
      std::string verdict = "ok";
      if (!a.setup_ok) {
        ok = false;
        verdict = "FAIL(setup)";
      } else if (a.open != a.target || a.refused != 0) {
        ok = false;
        verdict = "FAIL(population)";
      } else if (!a.ledger_consistent) {
        ok = false;
        verdict = "FAIL(ledger)";
      } else if (!a.crosscheck_ok) {
        ok = false;
        verdict = "FAIL(crosscheck)";
      } else if (!a.attribution_ok) {
        ok = false;
        verdict = "FAIL(attribution)";
      } else if (a.bytes_per_conn > static_cast<double>(kBytesPerConnGate)) {
        ok = false;
        verdict = "FAIL(bytes/conn)";
      } else if (!identical) {
        ok = false;
        verdict = "FAIL(determinism)";
      }
      if (!ok) {
        ++failures;
      }

      table.AddRow({label, std::to_string(a.target), std::to_string(a.open),
                    Fixed(a.bytes_per_conn, 1), std::to_string(a.fd_bytes),
                    std::to_string(a.conn_bytes),
                    std::to_string(a.interest_bytes),
                    std::to_string(a.transport_bytes), Fixed(a.idle_cpu_pct, 3),
                    Fixed(ToMillis(a.t_wait), 2), Fixed(ToMillis(a.t_sweep), 2),
                    Fixed(ToMillis(a.t_loop), 2),
                    std::to_string(a.window_iterations), verdict});
      AppendJson(json, label, a, identical, &first_row);
      std::cout << label << " @ " << n << ": " << verdict << "\n";
    }
  }

  json << "\n  ],\n  \"failures\": " << failures << "\n}\n";
  std::cout << "\n";
  table.Print(std::cout);
  table.WriteCsvFile("million_idle.csv");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
  }
  std::cout << "\nwrote million_idle.csv, " << json_path << "\n";
  if (failures != 0) {
    std::cout << failures << " gate failure(s)\n";
  }
  return failures;
}
