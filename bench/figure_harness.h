// Shared driver for the paper-figure benchmark binaries.
//
// Each FIG binary declares a server kind and an inactive-connection load and
// sweeps the targeted request rate over the paper's x-axis (500..1100),
// printing the same series the figure plots and writing a CSV next to it.

#ifndef BENCH_FIGURE_HARNESS_H_
#define BENCH_FIGURE_HARNESS_H_

#include <string>
#include <vector>

#include "src/load/benchmark_run.h"

namespace scio {

struct FigureSweepConfig {
  std::string figure_id;      // e.g. "fig04"
  std::string title;
  ServerKind server = ServerKind::kThttpdPoll;
  int inactive = 1;
  std::vector<double> rates = {500, 600, 700, 800, 900, 1000, 1100};
  SimDuration duration = Seconds(10);
  SimDuration sample_width = Seconds(1);
  uint64_t seed = 42;
  // Knobs forwarded to the run config (for ablation binaries).
  BenchmarkRunConfig base;
};

// Run the sweep, print the figure table to stdout, write <figure_id>.csv in
// the working directory. Returns the per-rate results.
std::vector<BenchmarkResult> RunFigureSweep(const FigureSweepConfig& config);

// Parse "--rates=500,700" / "--duration=5" / "--quick" style overrides.
void ApplyCommandLine(int argc, char** argv, FigureSweepConfig* config);

}  // namespace scio

#endif  // BENCH_FIGURE_HARNESS_H_
