// Attack & defense bench: scripted ingress campaigns vs three filtering
// postures, measuring graceful degradation instead of raw throughput.
//
// Each campaign opens an attack window mid-generation and every (campaign,
// server, posture) cell runs the same seeded benign load underneath it:
//
//   no-filter  the seed servers as shipped: no chain, no cookies.
//   static     an operator's blunt instrument: one global RATE_LIMIT rule
//              plus always-on syncookies, installed before the run.
//   adaptive   the AdaptiveDefense tier ladder, starting from a cold chain.
//
// The headline gate is the robustness claim: under every campaign the
// adaptive posture must keep the benign reply rate at >= 2x the no-filter
// posture over the attack window, and must be back at >= 90% of its
// pre-attack baseline within a bounded post-attack window. Every run must
// satisfy attribution.Sum() == busy_time (filter CPU is charged like any
// other kernel work), and a double-run section proves campaigns replay
// bit-for-bit. A final sweep prices rule-chain traversal against connection
// count for the filtering-cost table in EXPERIMENTS.md.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/load/benchmark_run.h"
#include "src/load/smp_benchmark_run.h"
#include "src/metrics/table.h"

namespace scio {
namespace {

// Run layout: generation spans [warmup, warmup + duration); reply_series
// bucket i covers [i, i+1) seconds of that window. The attack window sits
// mid-generation so the series shows healthy -> degraded -> recovered.
struct Layout {
  SimDuration warmup = Seconds(2);
  SimDuration duration = Seconds(10);
  SimDuration drain = Seconds(4);
  SimTime attack_start = Seconds(5);
  SimTime attack_end = Seconds(8);
  // Campaign intensities (scaled down under --quick).
  double flood_rate = 10000.0;
  double blowup_flood_rate = 8000.0;
  int blowup_rules = 300;
  int slowloris_population = 1500;
};

Layout MakeLayout(bool quick) {
  Layout layout;
  if (quick) {
    layout.duration = Seconds(6);
    layout.drain = Seconds(3);
    layout.attack_start = Seconds(4);
    layout.attack_end = Seconds(6);
    layout.flood_rate = 4000.0;
    layout.blowup_flood_rate = 3000.0;
    layout.blowup_rules = 120;
    // Still larger than both fd budgets (512 single-proc, 4x256 sharded) —
    // a slowloris herd the table can absorb is not an attack.
    layout.slowloris_population = 1200;
  }
  return layout;
}

// A server must be back at >= kRecoveryFraction of its pre-attack baseline
// within this many buckets of the attack window closing.
constexpr double kRecoveryFraction = 0.9;
constexpr int kRecoveryBoundBuckets = 3;
// Small fd table so a slowloris herd can actually exhaust it.
constexpr int kServerMaxFds = 512;
constexpr int kSmpWorkerMaxFds = 256;

struct Campaign {
  std::string name;
  AttackSchedule attack;
};

std::vector<Campaign> BuildCampaigns(const Layout& layout) {
  std::vector<Campaign> campaigns;
  {
    // Spoofed SYNs saturate the half-open queue; benign SYNs are then
    // silently dropped until the flood clears or cookies turn on.
    Campaign c;
    c.name = "syn-flood";
    c.attack.name = c.name;
    c.attack.seed = 211;
    AttackWave wave;
    wave.kind = AttackKind::kSynFlood;
    wave.start = layout.attack_start;
    wave.end = layout.attack_end;
    wave.rate = layout.flood_rate;
    c.attack.Add(wave);
    campaigns.push_back(c);
  }
  {
    // Real connections dribbling bytes forever: the fd table, not the SYN
    // queue, is the resource under attack.
    Campaign c;
    c.name = "slowloris";
    c.attack.name = c.name;
    c.attack.seed = 212;
    AttackWave wave;
    wave.kind = AttackKind::kSlowloris;
    wave.start = layout.attack_start;
    wave.end = layout.attack_end;
    wave.population = layout.slowloris_population;
    wave.write_interval = Millis(300);
    wave.reconnect_delay = Millis(300);
    c.attack.Add(wave);
    campaigns.push_back(c);
  }
  {
    // The operator-side failure mode: a reactive blocklist balloons while a
    // flood runs, so benign SYNs pay a long no-match traversal. Inert on the
    // no-filter posture (there is no chain to bloat) — that cell is a plain
    // flood.
    Campaign c;
    c.name = "blowup+flood";
    c.attack.name = c.name;
    c.attack.seed = 213;
    AttackWave blowup;
    blowup.kind = AttackKind::kRuleBlowup;
    blowup.start = layout.attack_start;
    blowup.end = layout.attack_end;
    blowup.rules = layout.blowup_rules;
    c.attack.Add(blowup);
    AttackWave flood;
    flood.kind = AttackKind::kSynFlood;
    flood.start = layout.attack_start;
    flood.end = layout.attack_end;
    flood.rate = layout.blowup_flood_rate;
    c.attack.Add(flood);
    campaigns.push_back(c);
  }
  return campaigns;
}

enum class Posture { kNoFilter, kStatic, kAdaptive };

const char* PostureName(Posture posture) {
  switch (posture) {
    case Posture::kNoFilter:
      return "no-filter";
    case Posture::kStatic:
      return "static";
    case Posture::kAdaptive:
      return "adaptive";
  }
  return "?";
}

FilterRule StaticGlobalLimit() {
  FilterRule rule;
  rule.label = "static-global-limit";
  rule.on_connect = true;
  rule.verdict = FilterVerdict::kRateLimit;
  rule.rate_per_sec = 2000.0;
  rule.burst = 256.0;
  return rule;
}

// BenchmarkRunConfig and SmpBenchmarkConfig share the ingress-defense field
// names, so one template covers both.
template <typename Config>
void ApplyPosture(Config* config, Posture posture) {
  switch (posture) {
    case Posture::kNoFilter:
      break;
    case Posture::kStatic:
      config->static_rules.push_back(StaticGlobalLimit());
      config->server_config.syn_backlog.syncookies = true;
      break;
    case Posture::kAdaptive:
      config->adaptive_defense = true;
      // React within the attack window: control ticks every 200ms, and
      // anything still reading its request after 500ms (benign requests
      // finish in milliseconds) is drip-fed and gets reaped.
      config->defense.tick_interval = Millis(200);
      config->defense.request_deadline = Millis(500);
      break;
  }
}

BenchmarkRunConfig MakeConfig(const Layout& layout, const Campaign& campaign,
                              ServerKind server, Posture posture) {
  BenchmarkRunConfig config;
  config.server = server;
  config.active.request_rate = 600.0;
  config.active.duration = layout.duration;
  config.active.seed = 11;
  config.active.max_retries = 3;  // real clients retry through an attack
  config.inactive.connections = 50;
  config.warmup = layout.warmup;
  config.drain = layout.drain;
  config.attack = campaign.attack;
  config.server_max_fds = kServerMaxFds;
  ApplyPosture(&config, posture);
  return config;
}

SmpBenchmarkConfig MakeSmpConfig(const Layout& layout, const Campaign& campaign,
                                 Posture posture) {
  SmpBenchmarkConfig config;
  config.server = ServerKind::kThttpdDevPoll;
  config.mode = ListenerMode::kSharded;
  config.workers = 4;
  config.cpus = 4;
  config.seed = 29;
  config.worker_max_fds = kSmpWorkerMaxFds;
  config.active.request_rate = 600.0;
  config.active.duration = layout.duration;
  config.active.seed = 11;
  config.active.max_retries = 3;
  config.inactive.connections = 50;
  config.warmup = layout.warmup;
  config.drain = layout.drain;
  config.attack = campaign.attack;
  ApplyPosture(&config, posture);
  return config;
}

// Mean benign reply rate over the buckets fully inside the attack window —
// "reply rate at peak attack" in the acceptance wording.
double AttackWindowMean(const std::vector<double>& series, const Layout& layout) {
  const auto first = static_cast<size_t>((layout.attack_start - layout.warmup) / Seconds(1));
  const auto last = static_cast<size_t>((layout.attack_end - layout.warmup) / Seconds(1));
  double sum = 0;
  size_t n = 0;
  for (size_t i = first; i < last && i < series.size(); ++i) {
    sum += series[i];
    ++n;
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

struct Recovery {
  double baseline = 0;     // mean pre-attack bucket rate
  double recovery_s = -1;  // -1 = never recovered in the bounded window
  bool ok = false;
};

Recovery MeasureRecovery(const std::vector<double>& series, const Layout& layout) {
  Recovery r;
  const auto attack_bucket =
      static_cast<size_t>((layout.attack_start - layout.warmup) / Seconds(1));
  // The bucket containing the last attack instant still saw attack time;
  // recovery is judged from the first fully-clean bucket.
  const auto clear_bucket = static_cast<size_t>(
      (layout.attack_end - layout.warmup + Seconds(1) - 1) / Seconds(1));

  double sum = 0;
  for (size_t i = 0; i < attack_bucket && i < series.size(); ++i) {
    sum += series[i];
  }
  r.baseline = attack_bucket == 0 ? 0 : sum / static_cast<double>(attack_bucket);

  const size_t bound =
      std::min(series.size(), clear_bucket + static_cast<size_t>(kRecoveryBoundBuckets));
  for (size_t i = clear_bucket; i < bound; ++i) {
    if (series[i] >= kRecoveryFraction * r.baseline) {
      r.recovery_s = static_cast<double>(i - clear_bucket);
      r.ok = true;
      break;
    }
  }
  return r;
}

// Everything that must be bit-identical across two runs of the same seed:
// the torture-bench signature plus the attack/chain/defense ledgers.
std::string MetricsSignature(const BenchmarkResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.attempts << '|' << result.successes << '|' << result.errors << '|'
      << result.client_retries << '|' << result.kernel_stats.syscalls << '|'
      << result.kernel_stats.net_raw_syns << '|'
      << result.kernel_stats.net_syncookies_sent << '|'
      << result.kernel_stats.net_syn_backlog_overflows << '|'
      << result.server_stats.connections_accepted << '|'
      << result.server_stats.deadline_reaps << '|' << result.syn_backlog_peak << '|';
  for (const auto& [name, value] : result.attack_stats.ToRows()) {
    out << name << '=' << value << ';';
  }
  for (const auto& [name, value] : result.chain_stats.ToRows()) {
    out << name << '=' << value << ';';
  }
  for (const auto& [name, value] : result.defense_stats.ToRows()) {
    out << name << '=' << value << ';';
  }
  // Same seed must spend every nanosecond in the same place, not just reach
  // the same totals.
  out << result.attribution.Signature() << '|' << result.busy_time << '|';
  for (double rate : result.reply_series) {
    out << rate << ',';
  }
  return out.str();
}

std::string Fixed(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed << value;
  return out.str();
}

}  // namespace
}  // namespace scio

int main(int argc, char** argv) {
  using namespace scio;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    }
  }
  const Layout layout = MakeLayout(quick);
  const std::vector<Campaign> campaigns = BuildCampaigns(layout);
  // The successor cores (epoll, kqueue) run the same campaigns as the 1999
  // interfaces — ROADMAP item 2's follow-up: the attack family must cover
  // the cores the scale story recommends, not just the paper's.
  const std::vector<ServerKind> servers =
      quick ? std::vector<ServerKind>{ServerKind::kThttpdDevPoll,
                                      ServerKind::kThttpdEpoll,
                                      ServerKind::kPhhttpdKqueue}
            : std::vector<ServerKind>{ServerKind::kThttpdDevPoll,
                                      ServerKind::kPhhttpd,
                                      ServerKind::kThttpdEpoll,
                                      ServerKind::kPhhttpdKqueue};
  const std::vector<Posture> postures = {Posture::kNoFilter, Posture::kStatic,
                                         Posture::kAdaptive};
  int failures = 0;

  std::cout << "=== attack & defense: campaigns vs filtering postures"
            << (quick ? " (quick)" : "") << " ===\n\n";
  Table table({"campaign", "server", "posture", "baseline_rps", "attack_rps",
               "recovery_s", "syns", "chain_drops", "cookies", "reaps", "tier_peak",
               "t_filter_ms", "t_drop_ms", "t_cookie_ms", "verdict"});

  for (const Campaign& campaign : campaigns) {
    for (ServerKind server : servers) {
      // The 2x gate compares postures within one (campaign, server) pair.
      double no_filter_mean = 0;
      for (Posture posture : postures) {
        const BenchmarkResult result =
            RunBenchmark(MakeConfig(layout, campaign, server, posture));
        if (!result.setup_ok) {
          table.AddRow({campaign.name, ServerKindName(server), PostureName(posture),
                        "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
                        "FAIL(setup)"});
          ++failures;
          continue;
        }
        const double attack_mean = AttackWindowMean(result.reply_series, layout);
        const Recovery recovery = MeasureRecovery(result.reply_series, layout);
        if (posture == Posture::kNoFilter) {
          no_filter_mean = attack_mean;
        }

        bool ok = true;
        std::string verdict = "ok";
        if (result.attribution.Sum() != result.busy_time) {
          ok = false;
          verdict = "FAIL(attribution)";
        } else if (posture == Posture::kAdaptive) {
          // The robustness claim: degrade gracefully under attack, then
          // come back once it clears.
          if (attack_mean < std::max(2.0 * no_filter_mean, 1.0)) {
            ok = false;
            verdict = "FAIL(2x-gate)";
          } else if (!recovery.ok) {
            ok = false;
            verdict = "FAIL(no-recovery)";
          } else {
            verdict = "PASS(2x)";
          }
        }
        if (!ok) {
          ++failures;
        }

        const uint64_t chain_drops =
            result.chain_stats.dropped + result.chain_stats.rate_limit_drops;
        table.AddRow(
            {campaign.name, ServerKindName(server), PostureName(posture),
             Fixed(recovery.baseline, 1), Fixed(attack_mean, 1),
             recovery.ok ? std::to_string(static_cast<int>(recovery.recovery_s))
                         : std::string("never"),
             std::to_string(result.kernel_stats.net_raw_syns),
             std::to_string(chain_drops),
             std::to_string(result.kernel_stats.net_syncookies_sent),
             std::to_string(result.server_stats.deadline_reaps),
             std::to_string(result.defense_stats.tier_peak),
             Fixed(ToMillis(result.attribution[ChargeCat::kFilterMatch]), 2),
             Fixed(ToMillis(result.attribution[ChargeCat::kFilterDrop]), 2),
             Fixed(ToMillis(result.attribution[ChargeCat::kSynCookie]), 2), verdict});
      }
    }
  }
  table.Print(std::cout);
  table.WriteCsvFile("attack_defense.csv");

  std::cout << "\n=== attack & defense: sharded SMP (4 workers, 4 cpus) ===\n\n";
  Table smp_table({"campaign", "posture", "baseline_rps", "attack_rps", "syns",
                   "chain_drops", "cookies", "tier_peak", "synq_peak", "verdict"});
  for (const Campaign& campaign : campaigns) {
    double no_filter_mean = 0;
    for (Posture posture : postures) {
      const SmpBenchmarkResult result =
          RunSmpBenchmark(MakeSmpConfig(layout, campaign, posture));
      if (!result.setup_ok) {
        smp_table.AddRow({campaign.name, PostureName(posture), "-", "-", "-", "-",
                          "-", "-", "-", "FAIL(setup)"});
        ++failures;
        continue;
      }
      const double attack_mean = AttackWindowMean(result.reply_series, layout);
      const Recovery recovery = MeasureRecovery(result.reply_series, layout);
      if (posture == Posture::kNoFilter) {
        no_filter_mean = attack_mean;
      }

      bool ok = true;
      std::string verdict = "ok";
      if (result.attribution.Sum() != result.busy_time) {
        ok = false;
        verdict = "FAIL(attribution)";
      } else if (posture == Posture::kAdaptive) {
        if (attack_mean < std::max(2.0 * no_filter_mean, 1.0)) {
          ok = false;
          verdict = "FAIL(2x-gate)";
        } else {
          verdict = "PASS(2x)";
        }
      }
      if (!ok) {
        ++failures;
      }

      const uint64_t chain_drops =
          result.chain_stats.dropped + result.chain_stats.rate_limit_drops;
      smp_table.AddRow({campaign.name, PostureName(posture),
                        Fixed(recovery.baseline, 1), Fixed(attack_mean, 1),
                        std::to_string(result.kernel_stats.net_raw_syns),
                        std::to_string(chain_drops),
                        std::to_string(result.kernel_stats.net_syncookies_sent),
                        std::to_string(result.defense_stats.tier_peak),
                        std::to_string(result.syn_backlog_peak), verdict});
    }
  }
  smp_table.Print(std::cout);
  smp_table.WriteCsvFile("attack_defense_smp.csv");

  std::cout << "\n=== attack & defense: determinism (same seeds, two runs) ===\n\n";
  for (const Campaign& campaign : campaigns) {
    const BenchmarkRunConfig config =
        MakeConfig(layout, campaign, ServerKind::kThttpdDevPoll, Posture::kAdaptive);
    const std::string first = MetricsSignature(RunBenchmark(config));
    const std::string second = MetricsSignature(RunBenchmark(config));
    const bool identical = first == second;
    std::cout << "  " << campaign.name << " (adaptive, thttpd-devpoll): "
              << (identical ? "identical" : "DIVERGED") << "\n";
    if (!identical) {
      ++failures;
    }
  }
  {
    const SmpBenchmarkConfig config =
        MakeSmpConfig(layout, campaigns.front(), Posture::kAdaptive);
    const bool identical =
        RunSmpBenchmark(config).signature == RunSmpBenchmark(config).signature;
    std::cout << "  " << campaigns.front().name << " (adaptive, sharded x4): "
              << (identical ? "identical" : "DIVERGED") << "\n";
    if (!identical) {
      ++failures;
    }
  }

  std::cout << "\n=== filter cost vs connection count (benign load, junk rules) ===\n\n";
  Table cost_table({"rules", "inactive", "reply_avg", "evals", "rules_traversed",
                    "t_filter_ms", "ns_per_eval", "verdict"});
  const std::vector<int> rule_counts = quick ? std::vector<int>{0, 128}
                                             : std::vector<int>{0, 32, 128, 512};
  const std::vector<int> inactive_counts =
      quick ? std::vector<int>{250} : std::vector<int>{250, 1500};
  for (int inactive : inactive_counts) {
    for (int rules : rule_counts) {
      BenchmarkRunConfig config;
      config.server = ServerKind::kThttpdDevPoll;
      config.active.request_rate = 600.0;
      config.active.duration = layout.duration;
      config.active.seed = 11;
      config.inactive.connections = inactive;
      config.warmup = layout.warmup;
      config.drain = layout.drain;
      config.filter_enabled = true;
      for (int i = 0; i < rules; ++i) {
        // Narrow never-matching DROP bands: benign traffic pays the full
        // no-match traversal on both hooks, like a bloated blocklist.
        FilterRule rule;
        rule.label = "junk";
        rule.src_lo = (1 << 21) + i * 16;
        rule.src_hi = (1 << 21) + i * 16 + 16;
        rule.on_connect = true;
        rule.on_packet = true;
        rule.verdict = FilterVerdict::kDrop;
        config.static_rules.push_back(rule);
      }
      const BenchmarkResult result = RunBenchmark(config);
      const uint64_t evals =
          result.chain_stats.connect_evals + result.chain_stats.packet_evals;
      const double filter_ns =
          static_cast<double>(result.attribution[ChargeCat::kFilterMatch] +
                              result.attribution[ChargeCat::kFilterDrop]);
      const bool ok =
          result.setup_ok && result.attribution.Sum() == result.busy_time;
      if (!ok) {
        ++failures;
      }
      cost_table.AddRow(
          {std::to_string(rules), std::to_string(inactive),
           Fixed(result.reply_avg, 1), std::to_string(evals),
           std::to_string(result.kernel_stats.filter_rules_traversed),
           Fixed(filter_ns / 1e6, 2),
           Fixed(evals == 0 ? 0.0 : filter_ns / static_cast<double>(evals), 1),
           ok ? "ok" : "FAIL(attribution)"});
    }
  }
  cost_table.Print(std::cout);
  cost_table.WriteCsvFile("attack_filter_cost.csv");

  std::cout << "\n" << (failures == 0 ? "ALL PASS" : "FAILURES: " + std::to_string(failures))
            << std::endl;
  return failures == 0 ? 0 : 1;
}
