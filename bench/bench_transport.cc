// Transport bench: the {Reno, RACK, BBR} congestion stacks across the
// {clean, 1% loss, long-fat, link-flap} network regimes on both grown
// event cores (thttpd-epoll, phhttpd-kqueue).
//
// Four sections, each with its own gate:
//   - matrix: every (cc, scenario, server) leg must finish real transfers
//     with the per-category virtual-CPU ledger balanced (attribution sum ==
//     busy time) and segments charged to the new kTcp* categories;
//   - long-fat goodput: on the 100 ms-RTT 1%-loss leg, the BBR-style model
//     must move a document at >= 2x NewReno's per-transfer goodput — loss is
//     not congestion on a long fat pipe, and Reno's AIMD cannot tell;
//   - recovery: under a scripted tail-burst drop, the RACK stack's TLP must
//     repair the hole well before Reno's RTO floor (socket-level microbench,
//     same drop script for both stacks);
//   - flash crowd: a burst at ~4x the paper's saturation rate with the plane
//     attached, then a double-run determinism check — same seed, identical
//     metrics and transport counters, bit for bit.
//
// CSVs (cwd): transport_matrix.csv (with the full t_<category> virtual-CPU
// breakdown), transport_recovery.csv, transport_flash.csv. --quick trims
// durations and the matrix for CI smoke; gates stay on.

#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/sys.h"
#include "src/load/benchmark_run.h"
#include "src/metrics/table.h"
#include "src/transport/transport_plane.h"

namespace scio {
namespace {

bool quick = false;

// --- matrix ------------------------------------------------------------------

struct Scenario {
  std::string name;
  NetConfig net;
  FaultSchedule faults;
  size_t document_bytes = 6 * 1024;
  double request_rate = 300.0;
  SimDuration duration = Seconds(6);
  SimDuration drain = Seconds(4);
  // httperf's default 500 ms --timeout is tuned for LAN latencies; bulk
  // transfers over a long fat pipe legitimately need seconds.
  SimDuration client_timeout = Millis(500);
  bool expect_retransmits = false;
  // Loss scenarios drop server data frames, so the repair cost must show up
  // in the server's kTcpRetransmit ledger. A flap only delays frames; its
  // retransmits are mostly client requests RTO-ing through the outage, which
  // are never charged (client CPU is free by design).
  bool expect_retx_charge = false;
  bool longfat_gate = false;  // BBR >= 2x Reno per-transfer goodput here
};

std::vector<Scenario> BuildScenarios() {
  const SimDuration dur = quick ? Seconds(3) : Seconds(6);
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "clean";
    s.duration = dur;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "loss1";
    s.duration = dur;
    s.faults.name = s.name;
    s.faults.seed = 211;
    // 1% of frames dropped, both directions, for the whole run. The
    // magnitude only matters to legacy pipes; transport frames just die.
    s.faults.Add({FaultKind::kPacketLoss, 0, kSimTimeNever, 0.01,
                  static_cast<double>(Millis(150)), LinkDir::kBoth});
    s.expect_retransmits = true;
    s.expect_retx_charge = true;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "longfat";
    // 100 ms RTT, 1% loss: the regime where loss-as-congestion breaks down.
    // The document must be big enough that steady-state throughput — not
    // slow start — dominates the transfer (a 1 MB body is ~700 segments, so
    // every transfer sees several losses), and the rate low enough that the
    // shared link never queues; then per-transfer goodput measures the
    // stack. Reno halves on every loss it mistakes for congestion; the BBR
    // model keeps pacing at the measured bottleneck rate.
    s.net.latency = Millis(50);
    s.net.sndbuf = 256 * 1024;
    s.document_bytes = 1024 * 1024;
    s.request_rate = quick ? 2.0 : 3.0;
    s.duration = quick ? Seconds(4) : Seconds(8);
    s.drain = Seconds(16);
    s.client_timeout = Seconds(30);
    s.faults.name = s.name;
    s.faults.seed = 223;
    s.faults.Add({FaultKind::kPacketLoss, 0, kSimTimeNever, 0.01,
                  static_cast<double>(Millis(150)), LinkDir::kBoth});
    s.expect_retransmits = true;
    s.expect_retx_charge = true;
    s.longfat_gate = true;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "flap";
    s.duration = dur;
    s.faults.name = s.name;
    s.faults.seed = 229;
    // 400 ms outage mid-generation; held frames flush when it clears and
    // the stacks must repair whatever the burst reordered or timed out.
    const SimTime mid = Seconds(2) + dur / 2;
    s.faults.Add(
        {FaultKind::kLinkFlap, mid, mid + Millis(400), 1.0, 0, LinkDir::kBoth});
    s.expect_retransmits = true;
    scenarios.push_back(s);
  }
  return scenarios;
}

BenchmarkRunConfig MakeConfig(const Scenario& scenario, CcKind cc,
                              ServerKind server) {
  BenchmarkRunConfig config;
  config.server = server;
  config.net = scenario.net;
  config.faults = scenario.faults;
  config.document_bytes = scenario.document_bytes;
  config.active.request_rate = scenario.request_rate;
  config.active.duration = scenario.duration;
  config.active.client_timeout = scenario.client_timeout;
  config.active.seed = 17;
  config.active.max_retries = 3;
  config.inactive.connections = 50;
  config.drain = scenario.drain;
  config.transport_enabled = true;
  config.transport.default_cc = cc;
  config.transport.seed = 5 + static_cast<uint64_t>(cc);
  return config;
}

// Per-transfer goodput in Mbit/s: one document over the median connection
// time (connect + request + full response). The aggregate reply rate only
// measures the generator once every transfer completes inside the run; the
// median transfer is what separates the stacks on a long fat lossy pipe.
double TransferGoodputMbps(const Scenario& scenario,
                           const BenchmarkResult& result) {
  if (result.median_conn_ms <= 0) {
    return 0;
  }
  return static_cast<double>(scenario.document_bytes) * 8.0 /
         (result.median_conn_ms / 1000.0) / 1e6;
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

// Everything that must be bit-identical across two runs of the same seed —
// the torture signature plus the transport plane's own counters.
std::string MetricsSignature(const BenchmarkResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.attempts << '|' << result.successes << '|' << result.errors
      << '|' << result.client_retries << '|' << result.kernel_stats.syscalls
      << '|' << result.server_stats.connections_accepted << '|';
  for (const auto& [name, value] : result.fault_stats.ToRows()) {
    out << name << '=' << value << ';';
  }
  out << result.attribution.Signature() << '|' << result.busy_time << '|'
      << result.transport_stats.Signature() << '|';
  for (double rate : result.reply_series) {
    out << rate << ',';
  }
  return out.str();
}

// --- recovery microbench -----------------------------------------------------

// A socket-level world (no HTTP, no generator): one established connection,
// a scripted tail-burst drop, and the clock. Mirrors the unit-test fixture
// so the bench numbers and the regression test measure the same machinery.
struct TpWorld {
  Simulator sim;
  SimKernel kernel{&sim};
  NetStack net;
  Process& proc;
  Sys sys;
  TransportPlane plane;
  int listen_fd = -1;
  std::shared_ptr<SimListener> listener;

  TpWorld(TransportConfig cfg, NetConfig net_cfg)
      : net(&kernel, net_cfg),
        proc(kernel.CreateProcess("server")),
        sys(&kernel, &proc, &net),
        plane(&kernel, &net, cfg) {
    listen_fd = sys.Listen();
    listener = sys.listener(listen_fd);
  }
  ~TpWorld() { sim.DiscardPending(); }

  std::pair<std::shared_ptr<SimSocket>, int> Establish() {
    auto client = net.Connect(listener);
    sim.StepUntil([&] { return listener->backlog_depth() > 0; },
                  sim.now() + Seconds(1));
    const int fd = sys.Accept(listen_fd);
    sim.StepUntil(
        [&] { return client->state() == SimSocket::State::kEstablished; },
        sim.now() + Seconds(1));
    return {client, fd};
  }
};

std::string MakePattern(size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('a' + (i * 31 + i / 97) % 26));
  }
  return s;
}

struct RecoveryTrial {
  std::string name;
  NetConfig net;
  uint32_t body_segments = 16;
  uint32_t drop_from = 13;  // first-transmission drops at seq >= this * MSS
  // TLP's headline speedup needs the RTT well under the RTO floor; at 100 ms
  // RTT the probe timeout and the RTO converge and the probe only shaves the
  // difference, so the long-fat trial reports without the 2x gate.
  bool gate_speedup = true;
};

struct RecoveryOutcome {
  double completion_ms = 0;
  uint64_t tlp_probes = 0;
  uint64_t rto_fires = 0;
  uint64_t fast_retransmits = 0;
  bool content_ok = false;
};

RecoveryOutcome RunRecoveryTrial(const RecoveryTrial& trial, CcKind cc) {
  TransportConfig cfg;
  cfg.default_cc = cc;
  TpWorld w(cfg, trial.net);
  auto [client, fd] = w.Establish();
  const uint32_t drop_from = trial.drop_from;
  w.plane.set_loss_hook(
      [drop_from](bool server_sender, uint32_t seq, uint16_t retx) {
        return server_sender && retx == 0 && seq >= drop_from * kTcpMss;
      });
  const std::string body = MakePattern(trial.body_segments * kTcpMss);
  std::string received;
  client->on_data = [&received, client = client](size_t) {
    for (;;) {
      ReadResult r = client->Read(1 << 20);
      if (r.n == 0) {
        break;
      }
      received.append(r.data);
    }
  };
  const SimTime start = w.sim.now();
  size_t off = 0;
  while (off < body.size()) {
    const auto n = w.sys.Write(fd, Chunk{body.substr(off, 16 * 1024), 0});
    if (n <= 0) {
      w.sim.AdvanceTo(w.sim.now() + Millis(5));
      continue;
    }
    off += static_cast<size_t>(n);
  }
  w.sim.StepUntil([&] { return received.size() == body.size(); },
                  start + Seconds(30));
  client->on_data = nullptr;

  RecoveryOutcome out;
  out.completion_ms = ToMillis(w.sim.now() - start);
  out.tlp_probes = w.plane.stats().tlp_probes;
  out.rto_fires = w.plane.stats().rto_fires;
  out.fast_retransmits = w.plane.stats().fast_retransmit_entries;
  out.content_ok = received == body;
  return out;
}

}  // namespace
}  // namespace scio

int main(int argc, char** argv) {
  using namespace scio;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  const std::vector<CcKind> stacks = {CcKind::kReno, CcKind::kRack,
                                      CcKind::kBbr};
  const std::vector<ServerKind> servers = {ServerKind::kThttpdEpoll,
                                           ServerKind::kPhhttpdKqueue};
  int failures = 0;

  // --- section 1: the full matrix -------------------------------------------
  std::cout << "=== transport: {Reno,RACK,BBR} x {clean,loss1,longfat,flap}"
            << " x {epoll,kqueue} ===\n\n";
  Table table({"scenario", "cc", "server", "reply_avg", "err_pct", "median_ms",
               "xfer_mbps", "retx", "verdict"});
  std::vector<std::string> csv_headers = {
      "scenario",   "cc",        "server",    "reply_avg", "err_pct",
      "median_ms",  "xfer_mbps", "agg_mbps",  "segments",  "retransmits",
      "fast_rtx",   "rack_lost", "tlp",       "rto",       "acks"};
  for (size_t i = 0; i < kChargeCatCount; ++i) {
    csv_headers.push_back(std::string("t_") +
                          ChargeCatName(static_cast<ChargeCat>(i)) + "_ms");
  }
  Table csv_table(std::move(csv_headers));

  // xfer_mbps by (scenario, server) for the long-fat gate, indexed by stack.
  struct LongFat {
    double mbps[3] = {0, 0, 0};
  };
  std::vector<std::pair<std::string, LongFat>> longfat;  // per server

  for (const Scenario& scenario : BuildScenarios()) {
    for (ServerKind server : servers) {
      for (CcKind cc : stacks) {
        const BenchmarkResult result =
            RunBenchmark(MakeConfig(scenario, cc, server));
        const TransportStats& tp = result.transport_stats;
        const double xfer_mbps = TransferGoodputMbps(scenario, result);
        const double agg_mbps =
            static_cast<double>(result.successes) *
            static_cast<double>(scenario.document_bytes) * 8.0 /
            ToSeconds(scenario.duration) / 1e6;

        bool ok = result.setup_ok && result.successes > 0;
        std::string verdict = ok ? "PASS" : "FAIL(no-transfers)";
        // Every charged nanosecond lands in exactly one category, and the
        // new kTcp* categories really carry the transport's CPU.
        if (result.attribution.Sum() != result.busy_time) {
          ok = false;
          verdict = "FAIL(attribution)";
        } else if (tp.segments_sent == 0 || tp.acks_received == 0 ||
                   result.attribution[ChargeCat::kTcpSegment] == 0 ||
                   result.attribution[ChargeCat::kTcpAck] == 0) {
          ok = false;
          verdict = "FAIL(no-tcp-charges)";
        } else if (scenario.expect_retransmits &&
                   tp.segments_retransmitted == 0) {
          ok = false;
          verdict = "FAIL(no-retransmits)";
        } else if (scenario.expect_retx_charge &&
                   result.attribution[ChargeCat::kTcpRetransmit] == 0) {
          ok = false;
          verdict = "FAIL(no-retx-charge)";
        }
        if (!ok) {
          ++failures;
        }

        if (scenario.longfat_gate) {
          const std::string sname = ServerKindName(server);
          auto it = longfat.begin();
          for (; it != longfat.end() && it->first != sname; ++it) {
          }
          if (it == longfat.end()) {
            longfat.push_back({sname, {}});
            it = longfat.end() - 1;
          }
          it->second.mbps[static_cast<int>(cc)] = xfer_mbps;
        }

        table.AddRow({scenario.name, CcKindName(cc), ServerKindName(server),
                      Fmt(result.reply_avg, 1), Fmt(result.error_pct, 1),
                      Fmt(result.median_conn_ms, 1), Fmt(xfer_mbps, 2),
                      std::to_string(tp.segments_retransmitted), verdict});
        std::vector<std::string> row = {
            scenario.name,
            CcKindName(cc),
            ServerKindName(server),
            Fmt(result.reply_avg, 1),
            Fmt(result.error_pct, 1),
            Fmt(result.median_conn_ms, 1),
            Fmt(xfer_mbps, 2),
            Fmt(agg_mbps, 2),
            std::to_string(tp.segments_sent),
            std::to_string(tp.segments_retransmitted),
            std::to_string(tp.fast_retransmit_entries),
            std::to_string(tp.rack_marked_lost),
            std::to_string(tp.tlp_probes),
            std::to_string(tp.rto_fires),
            std::to_string(tp.acks_received)};
        for (size_t i = 0; i < kChargeCatCount; ++i) {
          row.push_back(
              Fmt(ToMillis(result.attribution[static_cast<ChargeCat>(i)]), 3));
        }
        csv_table.AddRow(std::move(row));
      }
    }
  }
  table.Print(std::cout);
  csv_table.WriteCsvFile("transport_matrix.csv");
  std::cout << "\n(csv written to transport_matrix.csv)\n";

  // --- section 2: long-fat goodput gate --------------------------------------
  std::cout << "\n=== transport: BBR vs Reno on the long-fat 1%-loss leg ===\n\n";
  for (const auto& [server_name, lf] : longfat) {
    const double reno = lf.mbps[static_cast<int>(CcKind::kReno)];
    const double bbr = lf.mbps[static_cast<int>(CcKind::kBbr)];
    const bool ok = reno > 0 && bbr >= 2.0 * reno;
    std::cout << "  " << server_name << ": reno " << Fmt(reno, 2)
              << " Mbit/s, bbr " << Fmt(bbr, 2) << " Mbit/s ("
              << Fmt(reno > 0 ? bbr / reno : 0, 1) << "x) "
              << (ok ? "PASS" : "FAIL(bbr < 2x reno)") << "\n";
    if (!ok) {
      ++failures;
    }
  }

  // --- section 3: tail-loss recovery, RACK vs Reno ---------------------------
  std::cout << "\n=== transport: tail-loss recovery (scripted drop) ===\n\n";
  std::vector<RecoveryTrial> trials;
  {
    RecoveryTrial t;
    t.name = "lan-tail3";
    trials.push_back(t);
  }
  if (!quick) {
    RecoveryTrial t;
    t.name = "longfat-tail3";
    t.net.latency = Millis(50);
    t.net.sndbuf = 256 * 1024;
    t.body_segments = 32;
    t.drop_from = 29;
    t.gate_speedup = false;
    trials.push_back(t);
  }
  Table recovery_table({"trial", "cc", "completion_ms", "tlp", "rto",
                        "fast_rtx", "verdict"});
  for (const RecoveryTrial& trial : trials) {
    RecoveryOutcome outcomes[3];
    for (CcKind cc : stacks) {
      outcomes[static_cast<int>(cc)] = RunRecoveryTrial(trial, cc);
    }
    const RecoveryOutcome& reno = outcomes[static_cast<int>(CcKind::kReno)];
    const RecoveryOutcome& rack = outcomes[static_cast<int>(CcKind::kRack)];
    for (CcKind cc : stacks) {
      const RecoveryOutcome& out = outcomes[static_cast<int>(cc)];
      bool ok = out.content_ok;
      std::string verdict = ok ? "PASS" : "FAIL(corrupt)";
      if (cc == CcKind::kRack && ok) {
        // The headline claim: a lost tail has no dupacks to trigger fast
        // retransmit, so Reno sits out its RTO; RACK's probe must not.
        if (rack.tlp_probes == 0) {
          ok = false;
          verdict = "FAIL(no-tlp)";
        } else if (trial.gate_speedup &&
                   rack.completion_ms * 2 >= reno.completion_ms) {
          ok = false;
          verdict = "FAIL(not-faster)";
        }
      }
      if (!ok) {
        ++failures;
      }
      recovery_table.AddRow({trial.name, CcKindName(cc),
                             Fmt(out.completion_ms, 2),
                             std::to_string(out.tlp_probes),
                             std::to_string(out.rto_fires),
                             std::to_string(out.fast_retransmits), verdict});
    }
  }
  recovery_table.Print(std::cout);
  recovery_table.WriteCsvFile("transport_recovery.csv");
  std::cout << "\n(csv written to transport_recovery.csv)\n";

  // --- section 4: flash crowd + determinism ----------------------------------
  std::cout << "\n=== transport: flash crowd (4x saturation burst) + "
            << "determinism ===\n\n";
  Table flash_table({"cc", "reply_avg", "err_pct", "median_ms", "segments",
                     "retx", "determinism", "verdict"});
  for (CcKind cc : stacks) {
    Scenario flash;
    flash.name = "flash";
    flash.request_rate = quick ? 1200.0 : 2400.0;
    flash.duration = quick ? Seconds(2) : Seconds(3);
    BenchmarkRunConfig cfg = MakeConfig(flash, cc, ServerKind::kThttpdEpoll);
    cfg.inactive.connections = 2000;  // the crowd arrives over idle ballast
    const BenchmarkResult first = RunBenchmark(cfg);
    const BenchmarkResult second = RunBenchmark(cfg);
    const bool identical = MetricsSignature(first) == MetricsSignature(second);
    bool ok = first.setup_ok && first.successes > 0 &&
              first.attribution.Sum() == first.busy_time && identical;
    if (!ok) {
      ++failures;
    }
    flash_table.AddRow(
        {CcKindName(cc), Fmt(first.reply_avg, 1), Fmt(first.error_pct, 1),
         Fmt(first.median_conn_ms, 1),
         std::to_string(first.transport_stats.segments_sent),
         std::to_string(first.transport_stats.segments_retransmitted),
         identical ? "identical" : "DIVERGED", ok ? "PASS" : "FAIL"});
  }
  flash_table.Print(std::cout);
  flash_table.WriteCsvFile("transport_flash.csv");
  std::cout << "\n(csv written to transport_flash.csv)\n";

  // Double-run the RNG-heaviest matrix leg too: long-fat loss on both
  // servers, BBR (pacing timers + jitter draws make it the busiest replay).
  for (const Scenario& scenario : BuildScenarios()) {
    if (!scenario.longfat_gate) {
      continue;
    }
    for (ServerKind server : servers) {
      const BenchmarkRunConfig cfg = MakeConfig(scenario, CcKind::kBbr, server);
      const std::string a = MetricsSignature(RunBenchmark(cfg));
      const std::string b = MetricsSignature(RunBenchmark(cfg));
      const bool identical = a == b;
      std::cout << "  longfat/bbr/" << ServerKindName(server) << ": "
                << (identical ? "identical" : "DIVERGED") << "\n";
      if (!identical) {
        ++failures;
      }
    }
  }

  std::cout << "\n"
            << (failures == 0 ? "ALL PASS"
                              : "FAILURES: " + std::to_string(failures))
            << std::endl;
  return failures == 0 ? 0 : 1;
}
