// ABL-1: how much of /dev/poll's win comes from kernel-state interest sets
// alone (§3.1) versus driver hints (§3.2)?
//
// Three configurations at 501 inactive connections: stock poll(), /dev/poll
// with hints disabled (every scan calls every driver), /dev/poll with hints.

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 501;
  ApplyCommandLine(argc, argv, &base);

  struct Variant {
    const char* name;
    ServerKind server;
    bool hints;
  };
  const Variant variants[] = {
      {"stock_poll", ServerKind::kThttpdPoll, false},
      {"devpoll_no_hints", ServerKind::kThttpdDevPoll, false},
      {"devpoll_hints", ServerKind::kThttpdDevPoll, true},
  };

  std::vector<BenchmarkResult> results[3];
  for (int i = 0; i < 3; ++i) {
    FigureSweepConfig config = base;
    config.figure_id = std::string("abl1_") + variants[i].name;
    config.title = "interest-set state vs driver hints";
    config.server = variants[i].server;
    config.base.devpoll_config.devpoll.hints_enabled = variants[i].hints;
    results[i] = RunFigureSweep(config);
  }

  std::cout << "=== abl1 summary: reply_avg (and driver poll calls) ===\n\n";
  Table table({"rate", "stock_poll", "devpoll_no_hints", "devpoll_hints",
               "driver_calls_no_hints", "driver_calls_hints", "avoided_by_hints"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow({base.rates[i], results[0][i].reply_avg, results[1][i].reply_avg,
                  results[2][i].reply_avg,
                  static_cast<double>(results[1][i].kernel_stats.devpoll_driver_calls),
                  static_cast<double>(results[2][i].kernel_stats.devpoll_driver_calls),
                  static_cast<double>(
                      results[2][i].kernel_stats.devpoll_driver_calls_avoided)},
                 0);
  }
  table.Print(std::cout);
  table.WriteCsvFile("abl1_hints.csv");
  return 0;
}
