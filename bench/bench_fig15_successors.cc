// FIG 15 (extension): the 1999 interfaces and their successors, head to
// head. Every event core the simulator models — stock poll(), /dev/poll
// (hinted), RT signals, epoll level- and edge-triggered, and kqueue — serves
// the same seeded workload at the paper's three inactive-connection loads
// (1 / 251 / 501). The CSV carries the reply-rate series plus the full
// per-category virtual-CPU breakdown, so the table answers *where* each
// interface spends its cycles, not just how fast it goes.
//
// Gates (exit code = number of failures):
//   - attribution.Sum() == busy_time for every run;
//   - double-run determinism: one config per (server, load) runs twice and
//     the full metrics signature must match byte for byte.
//
// Usage: bench_fig15_successors [--quick] [--rates=...] [--duration=S]
//   --quick   single mid rate, short duration (CI smoke).

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/load/benchmark_run.h"
#include "src/metrics/table.h"

namespace scio {
namespace {

// Everything that must be bit-identical across two runs of the same seed:
// counts, the RT/epoll/kqueue kernel counters, both ledgers, the rate series.
std::string MetricsSignature(const BenchmarkResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.attempts << '|' << result.successes << '|' << result.errors << '|'
      << result.kernel_stats.syscalls << '|'
      << result.kernel_stats.epoll_ctls << '|' << result.kernel_stats.epoll_waits << '|'
      << result.kernel_stats.epoll_events_delivered << '|'
      << result.kernel_stats.kq_kevents << '|'
      << result.kernel_stats.kq_events_delivered << '|'
      << result.kernel_stats.rt_signals_delivered << '|'
      << result.server_stats.connections_accepted << '|'
      << result.attribution.Signature() << '|' << result.busy_time << '|';
  for (double rate : result.reply_series) {
    out << rate << ',';
  }
  return out.str();
}

BenchmarkRunConfig MakeConfig(ServerKind server, int inactive, double rate,
                              SimDuration duration) {
  BenchmarkRunConfig config;
  config.server = server;
  config.active.request_rate = rate;
  config.active.duration = duration;
  // Same seeds across servers at a given (load, rate): every core faces the
  // identical arrival sequence.
  config.active.seed = 42 + static_cast<uint64_t>(rate);
  config.inactive.connections = inactive;
  config.inactive.seed = 42 * 31 + static_cast<uint64_t>(rate);
  config.sample_width = Seconds(1);
  return config;
}

}  // namespace
}  // namespace scio

int main(int argc, char** argv) {
  using namespace scio;

  std::vector<double> rates = {500, 700, 900, 1100};
  SimDuration duration = Seconds(10);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      rates = {700};
      duration = Seconds(4);
    } else if (arg.rfind("--rates=", 0) == 0) {
      rates.clear();
      std::stringstream ss(arg.substr(8));
      std::string item;
      while (std::getline(ss, item, ',')) {
        rates.push_back(std::atof(item.c_str()));
      }
    } else if (arg.rfind("--duration=", 0) == 0) {
      duration = SecondsF(std::atof(arg.c_str() + 11));
    }
  }

  const std::vector<ServerKind> servers = {
      ServerKind::kThttpdPoll,    ServerKind::kThttpdDevPoll,
      ServerKind::kPhhttpd,       ServerKind::kThttpdEpoll,
      ServerKind::kThttpdEpollEt, ServerKind::kPhhttpdKqueue};
  const std::vector<int> loads = {1, 251, 501};
  int failures = 0;

  std::cout << "=== fig15: successor event cores vs the 1999 interfaces ===\n\n";
  Table table({"server", "load", "rate", "reply_avg", "err_pct", "median_ms",
               "event_cpu_ms"});

  std::vector<std::string> csv_headers = {
      "server",    "load",      "rate",    "reply_avg", "reply_min",
      "reply_max", "reply_sd",  "err_pct", "median_ms", "p90_ms"};
  for (size_t i = 0; i < kChargeCatCount; ++i) {
    csv_headers.push_back(std::string("t_") +
                          ChargeCatName(static_cast<ChargeCat>(i)) + "_ms");
  }
  Table csv_table(std::move(csv_headers));

  for (ServerKind server : servers) {
    for (int load : loads) {
      for (double rate : rates) {
        const BenchmarkResult result =
            RunBenchmark(MakeConfig(server, load, rate, duration));
        if (!result.setup_ok) {
          std::cout << "SETUP FAILED: " << ServerKindName(server) << " load "
                    << load << "\n";
          ++failures;
          continue;
        }
        if (result.attribution.Sum() != result.busy_time) {
          std::cout << "ATTRIBUTION GATE FAILED: " << ServerKindName(server)
                    << " load " << load << " rate " << rate << ": sum "
                    << result.attribution.Sum() << " != busy "
                    << result.busy_time << "\n";
          ++failures;
        }

        // "Event CPU": what the core's own machinery cost this run — the
        // interface-specific categories, excluding request processing.
        const SimDuration event_cpu =
            result.attribution[ChargeCat::kPollfdCopyin] +
            result.attribution[ChargeCat::kDriverPoll] +
            result.attribution[ChargeCat::kWaitqueue] +
            result.attribution[ChargeCat::kResultCopyout] +
            result.attribution[ChargeCat::kInterestUpdate] +
            result.attribution[ChargeCat::kDevpollScan] +
            result.attribution[ChargeCat::kHintMark] +
            result.attribution[ChargeCat::kEpollCtl] +
            result.attribution[ChargeCat::kEpollReady] +
            result.attribution[ChargeCat::kEpollWait] +
            result.attribution[ChargeCat::kKqRegister] +
            result.attribution[ChargeCat::kKqFilter] +
            result.attribution[ChargeCat::kSignalEnqueue] +
            result.attribution[ChargeCat::kSignalDequeue] +
            result.attribution[ChargeCat::kSignalFlush];
        std::vector<std::string> row = {ServerKindName(server),
                                        std::to_string(load),
                                        std::to_string(static_cast<int>(rate))};
        for (double v : {result.reply_avg, result.error_pct,
                         result.median_conn_ms, ToMillis(event_cpu)}) {
          std::ostringstream os;
          os << std::fixed << std::setprecision(1) << v;
          row.push_back(os.str());
        }
        table.AddRow(std::move(row));

        std::vector<std::string> csv_row = {ServerKindName(server),
                                            std::to_string(load)};
        auto fmt = [&csv_row](double v, int precision) {
          std::ostringstream os;
          os << std::fixed << std::setprecision(precision) << v;
          csv_row.push_back(os.str());
        };
        for (double v : {rate, result.reply_avg, result.reply_min,
                         result.reply_max, result.reply_stddev,
                         result.error_pct, result.median_conn_ms,
                         result.p90_conn_ms}) {
          fmt(v, 1);
        }
        for (size_t i = 0; i < kChargeCatCount; ++i) {
          fmt(ToMillis(result.attribution[static_cast<ChargeCat>(i)]), 3);
        }
        csv_table.AddRow(std::move(csv_row));
      }

      // Determinism gate: the last rate, rerun, must be bit-identical.
      const BenchmarkRunConfig repro =
          MakeConfig(server, load, rates.back(), duration);
      const std::string first = MetricsSignature(RunBenchmark(repro));
      const std::string second = MetricsSignature(RunBenchmark(repro));
      if (first != second) {
        std::cout << "DETERMINISM GATE FAILED: " << ServerKindName(server)
                  << " load " << load << "\n";
        ++failures;
      }
    }
  }

  table.Print(std::cout);
  if (csv_table.WriteCsvFile("fig15_successors.csv")) {
    std::cout << "\n(csv written to fig15_successors.csv)\n";
  }
  std::cout << "\n" << (failures == 0 ? "ALL PASS" : "FAILURES: " + std::to_string(failures))
            << "\n";
  return failures;
}
