// FIG 11 of Provos & Lever 2000: phhttpd (RT signals), 1 inactive connection.
// Prints avg/min/max/stddev reply rate vs targeted request rate.

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  scio::FigureSweepConfig config;
  config.figure_id = "fig11";
  config.title = "phhttpd (RT signals), 1 inactive connection";
  config.server = scio::ServerKind::kPhhttpd;
  config.inactive = 1;
  scio::ApplyCommandLine(argc, argv, &config);
  scio::RunFigureSweep(config);
  return 0;
}
