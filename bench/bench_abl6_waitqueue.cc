// ABL-6: wait-queue churn and scan ordering (§6).
//
// Brown postulated that "expensive wait_queue manipulation is where POSIX RT
// signals have an advantage over poll()". Variant A charges/uncharges the
// per-fd wait-queue work in stock poll(). Variant B implements the paper's
// proposed "active connections are checked first" refinement as /dev/poll's
// hinted-first scan list (the germ of epoll's ready list).

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 501;
  ApplyCommandLine(argc, argv, &base);

  struct Variant {
    const char* name;
    ServerKind server;
    bool charge_waitqueue;
    bool hinted_first;
  };
  const Variant variants[] = {
      {"poll_with_waitqueue", ServerKind::kThttpdPoll, true, false},
      {"poll_free_waitqueue", ServerKind::kThttpdPoll, false, false},
      {"devpoll_full_scan", ServerKind::kThttpdDevPoll, true, false},
      {"devpoll_hinted_first", ServerKind::kThttpdDevPoll, true, true},
  };
  std::vector<BenchmarkResult> results[4];
  for (int i = 0; i < 4; ++i) {
    FigureSweepConfig config = base;
    config.figure_id = std::string("abl6_") + variants[i].name;
    config.title = "wait-queue churn / scan ordering";
    config.server = variants[i].server;
    config.base.poll_options.charge_waitqueue = variants[i].charge_waitqueue;
    config.base.devpoll_config.devpoll.hinted_first_scan = variants[i].hinted_first;
    results[i] = RunFigureSweep(config);
  }

  std::cout << "=== abl6 summary: median latency (ms) ===\n\n";
  Table table({"rate", "poll_wq", "poll_nowq", "devpoll_scan", "devpoll_hinted1st",
               "interests_scanned_full", "interests_scanned_hinted"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow(
        {base.rates[i], results[0][i].median_conn_ms, results[1][i].median_conn_ms,
         results[2][i].median_conn_ms, results[3][i].median_conn_ms,
         static_cast<double>(results[2][i].kernel_stats.devpoll_interests_scanned),
         static_cast<double>(results[3][i].kernel_stats.devpoll_interests_scanned)},
        1);
  }
  table.Print(std::cout);
  table.WriteCsvFile("abl6_waitqueue.csv");
  return 0;
}
