// MICRO-3: google-benchmark microbenchmarks of the paged descriptor table —
// allocate/close churn, Get hit cost, and open-set iteration versus table
// population. These are the host-side constants the million-connection plane
// depends on; JSON output via the standard --benchmark_format=json flag.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/kernel/fd_table.h"
#include "src/kernel/file.h"
#include "src/kernel/sim_kernel.h"
#include "src/sim/simulator.h"

namespace {

class InertFile : public scio::File {
 public:
  explicit InertFile(scio::SimKernel* kernel) : File(kernel) {}
  scio::PollEvents PollMask() const override { return 0; }
};

struct World {
  scio::Simulator sim;
  scio::SimKernel kernel{&sim};
};

// Allocate-then-close churn at a steady population: the accept/teardown hot
// path. One iteration = one allocate + one close at the low end of the table.
void BM_AllocateCloseChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  World w;
  scio::FdTable table(n + 8);
  auto file = std::make_shared<InertFile>(&w.kernel);
  for (int i = 0; i < n; ++i) {
    table.Allocate(file);
  }
  for (auto _ : state) {
    const int fd = table.Allocate(file);
    benchmark::DoNotOptimize(fd);
    table.Close(fd);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocateCloseChurn)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

// Get() hit on an open descriptor: page lookup + bitmap test + shared_ptr
// copy. Walks the table so every page gets touched.
void BM_GetHit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  World w;
  scio::FdTable table(n);
  auto file = std::make_shared<InertFile>(&w.kernel);
  for (int i = 0; i < n; ++i) {
    table.Allocate(file);
  }
  int fd = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(fd));
    fd = (fd + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetHit)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

// Allocation-free iteration over the open set. `sparse` leaves every 8th
// descriptor open in a table sized 8x the population, so the bitmap skip
// (rather than per-slot scan) is what is being measured.
void BM_OpenSetIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool sparse = state.range(1) != 0;
  World w;
  scio::FdTable table(sparse ? n * 8 : n);
  auto file = std::make_shared<InertFile>(&w.kernel);
  for (int i = 0; i < (sparse ? n * 8 : n); ++i) {
    table.Allocate(file);
  }
  if (sparse) {
    for (int i = 0; i < n * 8; ++i) {
      if (i % 8 != 0) {
        table.Close(i);
      }
    }
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    table.ForEachOpenFd(
        [&sum](int fd, const std::shared_ptr<scio::File>&) { sum += static_cast<uint64_t>(fd); });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OpenSetIteration)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({1 << 20, 0});

}  // namespace

BENCHMARK_MAIN();
