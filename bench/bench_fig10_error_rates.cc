// FIG 10 of Provos & Lever 2000: percentage of connections aborted due to
// errors, stock thttpd (poll) vs thttpd + /dev/poll, at 251 and 501 inactive
// connections.

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  ApplyCommandLine(argc, argv, &base);

  for (int inactive : {251, 501}) {
    std::cout << "=== fig10: error rate with load " << inactive << " ===\n\n";
    Table table({"rate", "err_pct_devpoll", "err_pct_normal_poll"});
    std::vector<BenchmarkResult> devpoll;
    std::vector<BenchmarkResult> poll;
    for (ServerKind kind : {ServerKind::kThttpdDevPoll, ServerKind::kThttpdPoll}) {
      FigureSweepConfig config = base;
      config.figure_id =
          "fig10_" + ServerKindName(kind) + "_" + std::to_string(inactive);
      config.title = "error rates (component sweep)";
      config.server = kind;
      config.inactive = inactive;
      auto results = RunFigureSweep(config);
      (kind == ServerKind::kThttpdDevPoll ? devpoll : poll) = std::move(results);
    }
    for (size_t i = 0; i < base.rates.size(); ++i) {
      table.AddRow({base.rates[i], devpoll[i].error_pct, poll[i].error_pct}, 2);
    }
    table.Print(std::cout);
    table.WriteCsvFile("fig10_load" + std::to_string(inactive) + ".csv");
    std::cout << std::endl;
  }
  return 0;
}
