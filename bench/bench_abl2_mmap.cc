// ABL-2: value of the mmap'ed result area (§3.3) — DP_POLL copying results
// out versus depositing them in the shared mapping. The paper predicts a
// small effect ("the size of the result set is small compared to the size of
// the entire interest set").

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 251;
  ApplyCommandLine(argc, argv, &base);

  std::vector<BenchmarkResult> results[2];
  for (int use_mmap = 0; use_mmap <= 1; ++use_mmap) {
    FigureSweepConfig config = base;
    config.figure_id = use_mmap ? "abl2_mmap" : "abl2_copyout";
    config.title = "result copy elimination";
    config.server = ServerKind::kThttpdDevPoll;
    config.base.devpoll_config.use_mmap_results = use_mmap != 0;
    results[use_mmap] = RunFigureSweep(config);
  }

  std::cout << "=== abl2 summary ===\n\n";
  Table table({"rate", "reply_copyout", "reply_mmap", "median_copyout_ms",
               "median_mmap_ms", "results_copied", "results_mapped"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow({base.rates[i], results[0][i].reply_avg, results[1][i].reply_avg,
                  results[0][i].median_conn_ms, results[1][i].median_conn_ms,
                  static_cast<double>(results[0][i].kernel_stats.devpoll_results_copied),
                  static_cast<double>(results[1][i].kernel_stats.devpoll_results_mapped)},
                 1);
  }
  table.Print(std::cout);
  table.WriteCsvFile("abl2_mmap.csv");
  return 0;
}
