// Calibration smoke run: one quick point per server at a few rates/loads.
// Not a paper figure; used to sanity-check the cost model (EXPERIMENTS.md
// records the calibration this produced).

#include <iostream>

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  using namespace scio;
  for (ServerKind kind :
       {ServerKind::kThttpdPoll, ServerKind::kThttpdDevPoll, ServerKind::kPhhttpd}) {
    for (int inactive : {1, 251, 501}) {
      FigureSweepConfig config;
      config.figure_id = "smoke_" + ServerKindName(kind) + "_" + std::to_string(inactive);
      config.title = "calibration smoke";
      config.server = kind;
      config.inactive = inactive;
      config.rates = {500, 700, 900, 1000, 1100};
      config.duration = Seconds(5);
      ApplyCommandLine(argc, argv, &config);
      RunFigureSweep(config);
    }
  }
  return 0;
}
