// Torture bench: seeded fault schedules vs every server, measuring whether —
// and how fast — the reply rate comes back after the fault clears.
//
// Each schedule opens a fault window in the middle of the generation
// interval. The pre-fault buckets of the reply-rate series establish a
// baseline; recovery time is the gap between the fault clearing and the
// first bucket back at >= 90% of that baseline. A schedule fails if a server
// never recovers inside the bounded post-fault window. The whole sweep is
// seeded, and a final double-run check proves the fault plane is
// deterministic: identical seed + schedule must reproduce identical metrics.

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/load/benchmark_run.h"
#include "src/metrics/table.h"

namespace scio {
namespace {

// Run layout: generation spans [kWarmup, kWarmup + kDuration); reply_series
// bucket i covers [i, i+1) seconds of that window.
constexpr SimDuration kWarmup = Seconds(2);
constexpr SimDuration kDuration = Seconds(10);
constexpr SimDuration kDrain = Seconds(4);
// Fault windows sit mid-generation.
constexpr SimTime kFaultStart = Seconds(5);
constexpr SimTime kFaultEnd = Seconds(8);
// A server must be back at >= kRecoveryFraction of its pre-fault baseline
// within this many buckets of the fault clearing.
constexpr double kRecoveryFraction = 0.9;
constexpr int kRecoveryBoundBuckets = 3;

struct TortureCase {
  std::string name;
  FaultSchedule faults;
  AbusiveWorkload abusive;
  size_t rt_queue_max = kDefaultRtQueueMax;
  SimTime fault_end = kFaultEnd;  // when the regime clears (absolute)
  bool expect_hybrid_signal_mode = false;
};

std::vector<TortureCase> BuildCases() {
  std::vector<TortureCase> cases;

  {
    TortureCase c;
    c.name = "pkt-loss";
    c.faults.name = c.name;
    c.faults.seed = 101;
    c.faults.Add({FaultKind::kPacketLoss, kFaultStart, kFaultEnd, 0.1,
                  static_cast<double>(Millis(150)), LinkDir::kBoth});
    cases.push_back(c);
  }
  {
    TortureCase c;
    c.name = "latency-spike";
    c.faults.name = c.name;
    c.faults.seed = 102;
    c.faults.Add({FaultKind::kLatencySpike, kFaultStart, kFaultEnd, 1.0,
                  static_cast<double>(Millis(50)), LinkDir::kBoth});
    cases.push_back(c);
  }
  {
    TortureCase c;
    c.name = "link-flap";
    c.faults.name = c.name;
    c.faults.seed = 103;
    // 400ms outage: everything in flight is held, then released in order.
    c.faults.Add({FaultKind::kLinkFlap, kFaultStart, kFaultStart + Millis(400),
                  1.0, 0, LinkDir::kBoth});
    c.fault_end = kFaultStart + Millis(400);
    cases.push_back(c);
  }
  {
    TortureCase c;
    c.name = "rt-shrink";
    c.faults.name = c.name;
    c.faults.seed = 104;
    // Queue forced down to 2 entries: any burst overflows, so SIGIO storms
    // the signal servers; the hybrid must ride it out in poll mode and come
    // back once the cap lifts.
    c.faults.Add({FaultKind::kRtQueueShrink, kFaultStart, kFaultEnd, 1.0, 2,
                  LinkDir::kBoth});
    c.expect_hybrid_signal_mode = true;
    cases.push_back(c);
  }
  {
    TortureCase c;
    c.name = "accept-emfile";
    c.faults.name = c.name;
    c.faults.seed = 105;
    c.faults.Add({FaultKind::kAcceptEmfile, kFaultStart, kFaultEnd, 0.8, 0,
                  LinkDir::kBoth});
    cases.push_back(c);
  }
  {
    TortureCase c;
    c.name = "eintr-storm";
    c.faults.name = c.name;
    c.faults.seed = 106;
    c.faults.Add({FaultKind::kEintr, kFaultStart, kFaultEnd, 0.5, 0,
                  LinkDir::kBoth});
    cases.push_back(c);
  }
  {
    TortureCase c;
    c.name = "abusive-clients";
    c.faults.name = c.name;
    c.faults.seed = 107;  // no windows: all pressure comes from the clients
    c.abusive.slowloris_connections = 100;
    c.abusive.abort_churn_rate = 200.0;
    c.abusive.start_at = kFaultStart;
    c.abusive.active_for = kFaultEnd - kFaultStart;
    cases.push_back(c);
  }
  return cases;
}

BenchmarkRunConfig MakeConfig(const TortureCase& torture, ServerKind server) {
  BenchmarkRunConfig config;
  config.server = server;
  config.active.request_rate = 600.0;
  config.active.duration = kDuration;
  config.active.seed = 11;
  config.active.max_retries = 3;  // real clients retry through an outage
  config.inactive.connections = 50;
  config.warmup = kWarmup;
  config.drain = kDrain;
  config.faults = torture.faults;
  config.abusive = torture.abusive;
  config.rt_queue_max = torture.rt_queue_max;
  return config;
}

struct Recovery {
  double baseline = 0;       // mean pre-fault bucket rate
  double fault_min = 0;      // worst bucket while the fault is active
  double recovery_s = -1;    // -1 = never recovered in the bounded window
  bool ok = false;
};

Recovery MeasureRecovery(const std::vector<double>& series, SimTime fault_end) {
  Recovery r;
  const auto fault_start_bucket = static_cast<size_t>((kFaultStart - kWarmup) / Seconds(1));
  // The bucket containing the clear instant still saw faulted time; recovery
  // is judged from the first fully-clean bucket.
  const auto clear_bucket =
      static_cast<size_t>((fault_end - kWarmup + Seconds(1) - 1) / Seconds(1));

  double sum = 0;
  for (size_t i = 0; i < fault_start_bucket && i < series.size(); ++i) {
    sum += series[i];
  }
  r.baseline = fault_start_bucket == 0 ? 0 : sum / static_cast<double>(fault_start_bucket);

  r.fault_min = r.baseline;
  for (size_t i = fault_start_bucket; i < clear_bucket && i < series.size(); ++i) {
    r.fault_min = std::min(r.fault_min, series[i]);
  }

  const size_t bound =
      std::min(series.size(), clear_bucket + static_cast<size_t>(kRecoveryBoundBuckets));
  for (size_t i = clear_bucket; i < bound; ++i) {
    if (series[i] >= kRecoveryFraction * r.baseline) {
      r.recovery_s = static_cast<double>(i - clear_bucket);
      r.ok = true;
      break;
    }
  }
  return r;
}

// Everything that must be bit-identical across two runs of the same seed.
std::string MetricsSignature(const BenchmarkResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.attempts << '|' << result.successes << '|' << result.errors << '|'
      << result.client_retries << '|' << result.abusive_aborts << '|'
      << result.slowloris_reconnects << '|' << result.kernel_stats.syscalls << '|'
      << result.server_stats.connections_accepted << '|'
      << result.server_stats.eintr_returns << '|'
      << result.server_stats.accepts_throttled << '|';
  for (const auto& [name, value] : result.fault_stats.ToRows()) {
    out << name << '=' << value << ';';
  }
  // The per-category virtual-CPU ledger is part of the signature: same seed
  // must spend every nanosecond in the same place, not just reach the same
  // totals.
  out << result.attribution.Signature() << '|' << result.busy_time << '|';
  for (double rate : result.reply_series) {
    out << rate << ',';
  }
  return out.str();
}

}  // namespace
}  // namespace scio

int main() {
  using namespace scio;

  const std::vector<ServerKind> servers = {ServerKind::kThttpdPoll,
                                           ServerKind::kThttpdDevPoll,
                                           ServerKind::kPhhttpd, ServerKind::kHybrid};
  int failures = 0;

  std::cout << "=== torture: fault schedules vs recovery time ===\n\n";
  Table table({"schedule", "server", "baseline_rps", "fault_min_rps", "recovery_s",
               "faults_injected", "verdict"});

  for (const TortureCase& torture : BuildCases()) {
    for (ServerKind server : servers) {
      const BenchmarkResult result = RunBenchmark(MakeConfig(torture, server));
      if (!result.setup_ok) {
        table.AddRow({torture.name, ServerKindName(server), "-", "-", "-", "-",
                      "FAIL(setup)"});
        ++failures;
        continue;
      }
      const Recovery recovery = MeasureRecovery(result.reply_series, torture.fault_end);

      uint64_t injected = 0;
      for (const auto& [name, value] : result.fault_stats.ToRows()) {
        injected += value;
      }
      injected += result.abusive_aborts + result.slowloris_reconnects;

      bool ok = recovery.ok;
      std::string verdict = ok ? "PASS" : "FAIL(no-recovery)";
      if (server == ServerKind::kHybrid && torture.expect_hybrid_signal_mode) {
        // The paper's unrealized design: after the overflow storm the hybrid
        // must be back in RT-signal mode, not stranded in poll.
        if (!result.hybrid_in_signal_mode || result.server_stats.overflow_recoveries == 0) {
          ok = false;
          verdict = "FAIL(stuck-in-poll)";
        }
      }
      if (!ok) {
        ++failures;
      }

      std::ostringstream recovery_text;
      recovery_text << (recovery.ok ? std::to_string(static_cast<int>(recovery.recovery_s))
                                    : std::string("never"));
      std::ostringstream baseline_text, fault_min_text;
      baseline_text.precision(1);
      baseline_text << std::fixed << recovery.baseline;
      fault_min_text.precision(1);
      fault_min_text << std::fixed << recovery.fault_min;
      table.AddRow({torture.name, ServerKindName(server), baseline_text.str(),
                    fault_min_text.str(), recovery_text.str(),
                    std::to_string(injected), verdict});
    }
  }
  table.Print(std::cout);
  table.WriteCsvFile("torture_recovery.csv");

  std::cout << "\n=== torture: determinism (same seed + schedule, two runs) ===\n\n";
  {
    const TortureCase repro = BuildCases().front();  // pkt-loss, RNG-heaviest
    for (ServerKind server : servers) {
      const std::string first = MetricsSignature(RunBenchmark(MakeConfig(repro, server)));
      const std::string second = MetricsSignature(RunBenchmark(MakeConfig(repro, server)));
      const bool identical = first == second;
      std::cout << "  " << ServerKindName(server) << ": "
                << (identical ? "identical" : "DIVERGED") << "\n";
      if (!identical) {
        ++failures;
      }
    }
  }

  std::cout << "\n=== torture: attribution invariant + recorder-as-observer ===\n\n";
  {
    // Under the RNG-heaviest schedule: every charged nanosecond must land in
    // exactly one category, and attaching a flight recorder must not move a
    // single one of them (the recorder is a pure observer).
    const TortureCase repro = BuildCases().front();
    for (ServerKind server : servers) {
      BenchmarkRunConfig cfg = MakeConfig(repro, server);
      const BenchmarkResult bare = RunBenchmark(cfg);
      FlightRecorder recorder;
      cfg.recorder = &recorder;
      const BenchmarkResult traced = RunBenchmark(cfg);
      const bool invariant = bare.attribution.Sum() == bare.busy_time &&
                             traced.attribution.Sum() == traced.busy_time;
      const bool observer = MetricsSignature(bare) == MetricsSignature(traced);
      std::cout << "  " << ServerKindName(server) << ": invariant "
                << (invariant ? "holds" : "VIOLATED") << ", recorder "
                << (observer ? "transparent" : "PERTURBED RUN") << " ("
                << recorder.total_recorded() << " events)\n";
      if (!invariant || !observer) {
        ++failures;
      }
    }
  }

  std::cout << "\n" << (failures == 0 ? "ALL PASS" : "FAILURES: " + std::to_string(failures))
            << std::endl;
  return failures == 0 ? 0 : 1;
}
