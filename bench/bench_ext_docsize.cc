// EXT-1 (beyond the paper's figures): document-size sensitivity.
//
// §5: "A web server's static performance depends on the size distribution of
// requested documents. Larger documents cause sockets and their corresponding
// file descriptors to remain active over a longer time period ... making the
// amortized cost of polling on a single file descriptor larger."
//
// Sweep the served document from 1 KB to 24 KB (the largest spans multiple
// send-buffer writes) at a fixed request rate, for stock poll vs /dev/poll.

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 251;
  base.rates = {450};
  ApplyCommandLine(argc, argv, &base);

  const size_t sizes[] = {1024, 6144, 16384, 24576};
  std::cout << "=== ext1: document size sensitivity (rate " << base.rates[0]
            << ", inactive " << base.inactive << ") ===\n\n";
  Table table({"doc_kb", "poll_avg", "devpoll_avg", "poll_median_ms",
               "devpoll_median_ms", "poll_err_pct", "devpoll_err_pct"});
  for (size_t bytes : sizes) {
    BenchmarkResult by_server[2];
    int i = 0;
    for (ServerKind kind : {ServerKind::kThttpdPoll, ServerKind::kThttpdDevPoll}) {
      BenchmarkRunConfig run = base.base;
      run.server = kind;
      run.document_bytes = bytes;
      run.active.request_rate = base.rates[0];
      run.active.duration = base.duration;
      run.active.seed = base.seed + bytes;
      run.inactive.connections = base.inactive;
      by_server[i++] = RunBenchmark(run);
    }
    table.AddRow({static_cast<double>(bytes) / 1024.0, by_server[0].reply_avg,
                  by_server[1].reply_avg, by_server[0].median_conn_ms,
                  by_server[1].median_conn_ms, by_server[0].error_pct,
                  by_server[1].error_pct},
                 1);
  }
  table.Print(std::cout);
  table.WriteCsvFile("ext1_docsize.csv");
  std::cout << "\nLarger documents stretch connection lifetimes; the poll server's\n"
               "scan grows with the live set while /dev/poll's does not.\n";
  return 0;
}
