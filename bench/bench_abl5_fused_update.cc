// ABL-5: the fused write+poll ioctl (§6 future work: "a single ioctl() that
// handles both operations at once could improve efficiency"). Separate
// write() + ioctl(DP_POLL) versus the fused call, under the normal
// connection churn (two interest updates per connection).

#include <iostream>

#include "bench/figure_harness.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  FigureSweepConfig base;
  base.inactive = 251;
  ApplyCommandLine(argc, argv, &base);

  std::vector<BenchmarkResult> results[2];
  for (int fused = 0; fused <= 1; ++fused) {
    FigureSweepConfig config = base;
    config.figure_id = fused ? "abl5_fused" : "abl5_separate";
    config.title = "fused interest-update + poll ioctl";
    config.server = ServerKind::kThttpdDevPoll;
    config.base.devpoll_config.use_fused_ioctl = fused != 0;
    results[fused] = RunFigureSweep(config);
  }

  std::cout << "=== abl5 summary ===\n\n";
  Table table({"rate", "reply_separate", "reply_fused", "median_separate_ms",
               "median_fused_ms", "syscalls_separate", "syscalls_fused"});
  for (size_t i = 0; i < base.rates.size(); ++i) {
    table.AddRow({base.rates[i], results[0][i].reply_avg, results[1][i].reply_avg,
                  results[0][i].median_conn_ms, results[1][i].median_conn_ms,
                  static_cast<double>(results[0][i].kernel_stats.syscalls),
                  static_cast<double>(results[1][i].kernel_stats.syscalls)},
                 1);
  }
  table.Print(std::cout);
  table.WriteCsvFile("abl5_fused.csv");
  return 0;
}
