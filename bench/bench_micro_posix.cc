// MICRO-1: real-OS dispatch cost versus watched-set size, on loopback
// socketpairs — the live-kernel descendant of the paper's core measurement.
// poll/select scan the whole set per call; epoll and RT signals do not.
//
// Each iteration pokes kActive of N watched pairs, waits for the events, and
// drains, so the measured quantity is "cost to learn about a handful of
// events among N mostly-idle descriptors".

#include <benchmark/benchmark.h>

#include <memory>

#include "src/posix/event_backend.h"
#include "src/posix/socketpair_rig.h"

namespace {

constexpr size_t kActive = 4;

void RunDispatch(benchmark::State& state, scio::BackendKind kind) {
  const size_t n = static_cast<size_t>(state.range(0));
  scio::SocketpairRig rig(n);
  if (!rig.ok()) {
    state.SkipWithError("socketpair rig setup failed (fd limit?)");
    return;
  }
  auto backend = scio::EventBackend::Create(kind);
  if (rig.RegisterAll(*backend) != 0) {
    state.SkipWithError("backend registration failed");
    return;
  }
  std::vector<scio::PosixEvent> events;
  size_t cursor = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < kActive; ++k) {
      rig.Poke((cursor + k * (n / kActive + 1)) % n);
    }
    cursor = (cursor + 1) % n;
    events.clear();
    size_t got = 0;
    while (got < kActive) {
      const int rc = backend->Wait(events, /*timeout_ms=*/1000);
      if (rc <= 0) {
        break;
      }
      got += static_cast<size_t>(rc);
    }
    state.PauseTiming();
    for (const scio::PosixEvent& ev : events) {
      for (size_t i = 0; i < n; ++i) {
        if (rig.watch_fd(i) == ev.fd) {
          rig.Drain(i);
          break;
        }
      }
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kActive));
}

void BM_Poll(benchmark::State& state) { RunDispatch(state, scio::BackendKind::kPoll); }
void BM_Select(benchmark::State& state) { RunDispatch(state, scio::BackendKind::kSelect); }
void BM_Epoll(benchmark::State& state) { RunDispatch(state, scio::BackendKind::kEpoll); }
void BM_EpollEdge(benchmark::State& state) {
  RunDispatch(state, scio::BackendKind::kEpollEdge);
}
void BM_RtSig(benchmark::State& state) { RunDispatch(state, scio::BackendKind::kRtSig); }

BENCHMARK(BM_Poll)->Arg(16)->Arg(128)->Arg(512);
BENCHMARK(BM_Select)->Arg(16)->Arg(128)->Arg(512);
BENCHMARK(BM_Epoll)->Arg(16)->Arg(128)->Arg(512);
BENCHMARK(BM_EpollEdge)->Arg(16)->Arg(128)->Arg(512);
BENCHMARK(BM_RtSig)->Arg(16)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
