// FIG 06 of Provos & Lever 2000: stock thttpd + poll(), 251 inactive connections.
// Prints avg/min/max/stddev reply rate vs targeted request rate.

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  scio::FigureSweepConfig config;
  config.figure_id = "fig06";
  config.title = "stock thttpd + poll(), 251 inactive connections";
  config.server = scio::ServerKind::kThttpdPoll;
  config.inactive = 251;
  scio::ApplyCommandLine(argc, argv, &config);
  scio::RunFigureSweep(config);
  return 0;
}
