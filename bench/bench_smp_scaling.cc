// SMP scaling: herd wakeups and multi-worker throughput, 1 -> 8 CPUs.
//
// Two experiments the paper's single-CPU testbed could not run:
//
//  1. Herd ablation (light load, 501 inactive connections, workers mostly
//     asleep): counts listener wakeups per accepted connection. Shared
//     wake-all reproduces the pre-2.3 thundering herd (wakeups/accept grows
//     with N); shared wake-one (WQ_FLAG_EXCLUSIVE + round-robin signals)
//     pins it at ~1; sharded accept has no shared queue at all.
//
//  2. Scaling sweep (offered load past single-CPU saturation, gigabit link):
//     reply rate as workers/CPUs grow. One CPU saturates; sharded N-CPU
//     pools should scale near-linearly until the load is absorbed.
//
// Every configuration runs twice with the same seed; any signature mismatch
// is a determinism failure and the bench exits non-zero.
//
// Usage: bench_smp_scaling [--quick] [--json=FILE]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/load/smp_benchmark_run.h"

namespace scio {
namespace {

struct Row {
  SmpBenchmarkResult r;
  std::string server;
};

SmpBenchmarkConfig BaseConfig(ServerKind server, ListenerMode mode, int n, bool quick) {
  SmpBenchmarkConfig config;
  config.server = server;
  config.mode = mode;
  config.workers = n;
  config.cpus = n;
  config.seed = 1789;
  config.active.seed = 17;
  config.inactive.seed = 23;
  config.warmup = quick ? Millis(500) : Seconds(1);
  config.drain = quick ? Seconds(1) : Seconds(2);
  return config;
}

// Phase 1: light load, large inactive population — workers sleep between
// SYNs, so every SYN finds the whole pool on the listener's wait queue.
SmpBenchmarkConfig HerdConfig(ServerKind server, ListenerMode mode, int n, bool quick) {
  SmpBenchmarkConfig config = BaseConfig(server, mode, n, quick);
  config.active.request_rate = 600;
  config.active.duration = quick ? Seconds(2) : Seconds(5);
  config.inactive.connections = 501;
  return config;
}

// Phase 2: offered load well past one CPU's capacity, on a gigabit link so
// the wire is not the bottleneck.
SmpBenchmarkConfig ScalingConfig(ServerKind server, ListenerMode mode, int n,
                                 bool quick) {
  SmpBenchmarkConfig config = BaseConfig(server, mode, n, quick);
  config.active.request_rate = 4500;
  config.active.duration = quick ? Seconds(2) : Seconds(5);
  config.inactive.connections = 501;
  config.net.bandwidth_bps = 1e9;
  return config;
}

// Runs the configuration twice; aborts the bench on a signature mismatch.
SmpBenchmarkResult RunChecked(const SmpBenchmarkConfig& config, int* failures) {
  std::cerr << "running " << ServerKindName(config.server) << " "
            << ListenerModeName(config.mode) << " n=" << config.workers << " ...\n";
  const SmpBenchmarkResult first = RunSmpBenchmark(config);
  const SmpBenchmarkResult second = RunSmpBenchmark(config);
  if (first.signature != second.signature) {
    std::cerr << "DETERMINISM FAILURE: " << ListenerModeName(config.mode) << " n="
              << config.workers << " " << ServerKindName(config.server)
              << ": double runs diverged\n";
    ++*failures;
  }
  return first;
}

void PrintTable(const char* title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title);
  std::printf(
      "%-16s %-16s %4s | %10s %10s %8s | %12s %10s %10s\n", "server", "mode", "n",
      "replies/s", "err%", "accepts", "wakeups/acc", "ctx-sw", "cpu-util");
  for (const Row& row : rows) {
    std::printf(
        "%-16s %-16s %4d | %10.1f %10.2f %8llu | %12.3f %10llu %10.3f\n",
        row.server.c_str(), row.r.mode.c_str(), row.r.workers, row.r.reply_avg,
        row.r.error_pct, static_cast<unsigned long long>(row.r.total_accepted),
        row.r.wakeups_per_accept,
        static_cast<unsigned long long>(row.r.context_switches),
        row.r.cpu_utilization);
  }
}

void AppendJson(std::ostringstream& out, const char* phase, const Row& row,
                bool* first) {
  if (!*first) {
    out << ",\n";
  }
  *first = false;
  out.precision(17);
  out << "    {\"phase\": \"" << phase << "\", \"server\": \"" << row.server
      << "\", \"mode\": \"" << row.r.mode << "\", \"workers\": " << row.r.workers
      << ", \"cpus\": " << row.r.cpus << ", \"reply_avg\": " << row.r.reply_avg
      << ", \"error_pct\": " << row.r.error_pct
      << ", \"total_accepted\": " << row.r.total_accepted
      << ", \"listener_syn_wakeups\": " << row.r.listener_syn_wakeups
      << ", \"wakeups_per_accept\": " << row.r.wakeups_per_accept
      << ", \"context_switches\": " << row.r.context_switches
      << ", \"exclusive_adds\": " << row.r.exclusive_adds
      << ", \"cpu_utilization\": " << row.r.cpu_utilization
      << ", \"median_conn_ms\": " << row.r.median_conn_ms << "}";
}

}  // namespace
}  // namespace scio

int main(int argc, char** argv) {
  using namespace scio;

  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  const std::vector<ServerKind> servers = {ServerKind::kThttpdDevPoll,
                                           ServerKind::kPhhttpd};
  const std::vector<ListenerMode> modes = {ListenerMode::kSharedWakeAll,
                                           ListenerMode::kSharedWakeOne,
                                           ListenerMode::kSharded};
  const std::vector<int> sizes = quick ? std::vector<int>{1, 4}
                                       : std::vector<int>{1, 2, 4, 8};

  int failures = 0;
  std::ostringstream json;
  json << "{\n  \"results\": [\n";
  bool first_row = true;

  std::vector<Row> herd_rows;
  for (ServerKind server : servers) {
    for (ListenerMode mode : modes) {
      for (int n : sizes) {
        const SmpBenchmarkResult r =
            RunChecked(HerdConfig(server, mode, n, quick), &failures);
        if (!r.setup_ok) {
          std::cerr << "setup failed: herd " << ListenerModeName(mode) << " n=" << n
                    << "\n";
          ++failures;
          continue;
        }
        Row row{r, ServerKindName(server)};
        AppendJson(json, "herd", row, &first_row);
        herd_rows.push_back(std::move(row));
      }
    }
  }
  PrintTable("== Herd ablation: light load, 501 inactive, workers sleeping ==",
             herd_rows);

  std::vector<Row> scaling_rows;
  for (ServerKind server : servers) {
    for (ListenerMode mode : modes) {
      for (int n : sizes) {
        const SmpBenchmarkResult r =
            RunChecked(ScalingConfig(server, mode, n, quick), &failures);
        if (!r.setup_ok) {
          std::cerr << "setup failed: scaling " << ListenerModeName(mode) << " n=" << n
                    << "\n";
          ++failures;
          continue;
        }
        Row row{r, ServerKindName(server)};
        AppendJson(json, "scaling", row, &first_row);
        scaling_rows.push_back(std::move(row));
      }
    }
  }
  PrintTable("== Scaling sweep: 4500 conn/s offered, gigabit link ==", scaling_rows);

  // --- acceptance checks -------------------------------------------------------
  // (a) wake-all herd grows with N; (b) wake-one stays ~1; (c) sharded
  // throughput scales 1 -> 4 CPUs under saturating load.
  auto find = [](const std::vector<Row>& rows, const std::string& server,
                 const std::string& mode, int n) -> const Row* {
    for (const Row& row : rows) {
      if (row.server == server && row.r.mode == mode && row.r.workers == n) {
        return &row;
      }
    }
    return nullptr;
  };
  const int big = quick ? 4 : 8;
  for (const char* server : {"thttpd-devpoll", "phhttpd"}) {
    const Row* herd_big = find(herd_rows, server, "shared-wake-all", big);
    const Row* herd_one = find(herd_rows, server, "shared-wake-all", 1);
    const Row* one_big = find(herd_rows, server, "shared-wake-one", big);
    if (herd_big == nullptr || herd_one == nullptr || one_big == nullptr) {
      std::cerr << "CHECK SKIPPED (missing rows): " << server << "\n";
      ++failures;
      continue;
    }
    if (herd_big->r.wakeups_per_accept <= 1.0 ||
        herd_big->r.wakeups_per_accept <= herd_one->r.wakeups_per_accept) {
      std::cerr << "CHECK FAILED: " << server
                << " wake-all herd did not grow with N (n=" << big << ": "
                << herd_big->r.wakeups_per_accept << ", n=1: "
                << herd_one->r.wakeups_per_accept << ")\n";
      ++failures;
    }
    if (one_big->r.wakeups_per_accept > 1.5) {
      std::cerr << "CHECK FAILED: " << server << " wake-one wakeups/accept = "
                << one_big->r.wakeups_per_accept << " (expected ~1)\n";
      ++failures;
    }
    const Row* sharded1 = find(scaling_rows, server, "sharded", 1);
    const Row* sharded4 = find(scaling_rows, server, "sharded", 4);
    if (sharded1 == nullptr || sharded4 == nullptr) {
      std::cerr << "CHECK SKIPPED (missing scaling rows): " << server << "\n";
      ++failures;
      continue;
    }
    if (sharded4->r.reply_avg < 3.0 * sharded1->r.reply_avg) {
      std::cerr << "CHECK FAILED: " << server << " sharded 4-CPU reply rate "
                << sharded4->r.reply_avg << " < 3x 1-CPU " << sharded1->r.reply_avg
                << "\n";
      ++failures;
    }
  }

  json << "\n  ],\n  \"determinism_failures\": " << failures << "\n}\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
  }

  if (failures != 0) {
    std::printf("\n%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall determinism + scaling checks passed\n");
  return 0;
}
