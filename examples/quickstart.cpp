// Quickstart: the /dev/poll API end to end on the simulated kernel.
//
// Builds a tiny world — one server process, one listener, one scripted
// client — and walks the exact sequence the paper describes (§3):
//   open /dev/poll -> write() interests -> DP_ALLOC + mmap the result area
//   -> ioctl(DP_POLL) -> handle events -> POLLREMOVE -> close.

#include <cassert>
#include <cstdlib>
#include <iostream>

#include "src/core/sys.h"
#include "src/http/http_message.h"

int main() {
  using namespace scio;

  // Syscall wrappers are [[nodiscard]]; an example should model checking them.
  auto must = [](long rc, const char* what) {
    if (rc < 0) {
      std::cerr << what << " failed: " << rc << "\n";
      std::exit(1);
    }
  };

  Simulator sim;
  SimKernel kernel(&sim);
  NetStack net(&kernel);
  Process& proc = kernel.CreateProcess("quickstart");
  Sys sys(&kernel, &proc, &net);

  // --- server setup -----------------------------------------------------------
  const int listen_fd = sys.Listen();
  const int dp = sys.OpenDevPoll();
  std::cout << "opened /dev/poll as fd " << dp << "\n";

  // Interest set lives in the kernel: one write() registers the listener.
  PollFd add{listen_fd, kPollIn, 0};
  must(sys.DevPollWrite(dp, {&add, 1}), "DP write(listener)");

  // Shared result area: no copy-out on DP_POLL (§3.3).
  must(sys.DevPollAlloc(dp, 64), "DP_ALLOC");
  PollFd* results = sys.DevPollMmap(dp);
  assert(results != nullptr);

  // --- a scripted client ---------------------------------------------------------
  auto listener = sys.listener(listen_fd);
  auto client = net.Connect(listener);
  client->on_connected = [&] {
    std::cout << "[client] connected at t=" << ToMillis(kernel.now()) << "ms\n";
    client->Write(Chunk{BuildHttpRequest("/index.html"), 0});
  };
  size_t client_received = 0;
  client->on_data = [&](size_t n) {
    client_received += n;
    client->Read(SIZE_MAX);
  };

  // --- the event loop --------------------------------------------------------------
  int conn_fd = -1;
  bool served = false;
  while (!served) {
    DvPoll args;
    args.dp_fds = nullptr;  // deliver into the mmap'ed area
    args.dp_nfds = 64;
    args.dp_timeout = 1000;
    const int ready = sys.DevPollPoll(dp, &args);
    std::cout << "DP_POLL -> " << ready << " event(s) at t=" << ToMillis(kernel.now())
              << "ms\n";
    for (int i = 0; i < ready; ++i) {
      if (results[i].fd == listen_fd) {
        conn_fd = sys.Accept(listen_fd);
        std::cout << "accepted connection as fd " << conn_fd << "\n";
        PollFd conn_interest{conn_fd, kPollIn, 0};
        must(sys.DevPollWrite(dp, {&conn_interest, 1}), "DP write(conn)");
      } else if (results[i].fd == conn_fd) {
        const ReadResult r = sys.Read(conn_fd, 4096);
        std::cout << "request: " << r.data.substr(0, r.data.find('\r')) << "\n";
        must(sys.Write(conn_fd, BuildHttpOkResponse(6 * 1024)), "write(conn)");
        // Retire the interest with POLLREMOVE before closing (§3.1).
        PollFd remove{conn_fd, kPollRemove, 0};
        must(sys.DevPollWrite(dp, {&remove, 1}), "DP write(remove)");
        must(sys.Close(conn_fd), "close(conn)");
        served = true;
      }
    }
  }

  // Let the response drain to the client.
  sim.RunAll();
  std::cout << "[client] received " << client_received << " bytes of response\n";

  must(sys.DevPollMunmap(dp), "munmap");
  must(sys.Close(dp), "close(dp)");
  std::cout << "done: " << kernel.stats().syscalls << " simulated syscalls, "
            << kernel.stats().devpoll_driver_calls << " driver polls, "
            << kernel.stats().devpoll_driver_calls_avoided << " avoided by hints\n";
  return 0;
}
