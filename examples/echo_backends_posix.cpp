// Real-OS demo: the same tiny echo workload dispatched through each live
// kernel backend (poll, select, epoll level/edge, POSIX RT signals), with
// wall-clock timings — the modern footnote to the paper's comparison.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "src/posix/event_backend.h"
#include "src/posix/socketpair_rig.h"

namespace {

// Poke-and-dispatch rounds over `watched` pairs, `active` of them hot.
double RunRounds(scio::EventBackend& backend, scio::SocketpairRig& rig, size_t active,
                 int rounds) {
  std::vector<scio::PosixEvent> events;
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < active; ++i) {
      rig.Poke((static_cast<size_t>(round) + i * 37) % rig.size());
    }
    size_t got = 0;
    while (got < active) {
      events.clear();
      const int rc = backend.Wait(events, 1000);
      if (rc <= 0) {
        break;
      }
      got += static_cast<size_t>(rc);
      for (const scio::PosixEvent& ev : events) {
        // Echo handling: drain the byte.
        char buf[64];
        while (::read(ev.fd, buf, sizeof buf) > 0) {
        }
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         (rounds * static_cast<double>(active));
}

}  // namespace

int main(int argc, char** argv) {
  const size_t watched = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 256;
  const size_t active = 4;
  const int rounds = 2000;
  std::cout << "dispatch cost per event, " << watched << " watched fds, " << active
            << " active per round (lower is better)\n\n";

  for (scio::BackendKind kind :
       {scio::BackendKind::kPoll, scio::BackendKind::kSelect, scio::BackendKind::kEpoll,
        scio::BackendKind::kEpollEdge, scio::BackendKind::kRtSig}) {
    scio::SocketpairRig rig(watched);
    if (!rig.ok()) {
      std::cerr << "socketpair setup failed (fd limit too low?)\n";
      return 1;
    }
    auto backend = scio::EventBackend::Create(kind);
    if (rig.RegisterAll(*backend) != 0) {
      std::cout << backend->name() << ": registration failed (skipped)\n";
      continue;
    }
    const double us = RunRounds(*backend, rig, active, rounds);
    std::cout << backend->name() << ": " << us << " us/event\n";
  }
  std::cout << "\npoll/select scan all " << watched
            << " descriptors per call; epoll and RT signals do not — the\n"
               "scaling gap the paper's /dev/poll work opened up.\n";
  return 0;
}
