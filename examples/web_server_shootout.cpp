// Web-server shootout: one benchmark point, all four servers, side by side.
//
// The scenario of the paper's intro: a server facing a constant population
// of slow, high-latency clients plus a stream of real requests. Usage:
//
//   web_server_shootout [rate] [inactive] [duration_s]

#include <cstdlib>
#include <iostream>

#include "src/load/benchmark_run.h"
#include "src/metrics/table.h"

int main(int argc, char** argv) {
  using namespace scio;
  const double rate = argc > 1 ? std::atof(argv[1]) : 900.0;
  const int inactive = argc > 2 ? std::atoi(argv[2]) : 251;
  const double duration_s = argc > 3 ? std::atof(argv[3]) : 8.0;

  std::cout << "Scenario: " << rate << " req/s, " << inactive
            << " inactive connections, " << duration_s << "s\n\n";

  Table table({"server", "reply_avg", "err_pct", "median_ms", "p90_ms", "syscalls",
               "driver_polls", "hints_avoided"});
  for (ServerKind kind : {ServerKind::kThttpdPoll, ServerKind::kThttpdDevPoll,
                          ServerKind::kPhhttpd, ServerKind::kHybrid}) {
    BenchmarkRunConfig config;
    config.server = kind;
    config.active.request_rate = rate;
    config.active.duration = SecondsF(duration_s);
    config.inactive.connections = inactive;
    const BenchmarkResult r = RunBenchmark(config);
    const uint64_t driver_polls =
        r.kernel_stats.poll_driver_calls + r.kernel_stats.devpoll_driver_calls;
    table.AddRow({ServerKindName(kind), std::to_string(static_cast<int>(r.reply_avg)),
                  std::to_string(r.error_pct).substr(0, 4),
                  std::to_string(r.median_conn_ms).substr(0, 6),
                  std::to_string(r.p90_conn_ms).substr(0, 6),
                  std::to_string(r.kernel_stats.syscalls), std::to_string(driver_polls),
                  std::to_string(r.kernel_stats.devpoll_driver_calls_avoided)});
  }
  table.Print(std::cout);
  std::cout << "\nNote how /dev/poll turns driver polls into 'hints_avoided' as the\n"
               "interest set grows — that is the paper's §3.2 in action.\n";
  return 0;
}
