// Hybrid crossover demo: drive the paper's §4 hybrid server through a load
// ramp (light -> heavy -> light) and watch it switch between RT-signal mode
// and /dev/poll mode using signal-queue occupancy as the trigger — including
// the switch *back* that phhttpd never implemented (§6).

#include <iostream>

#include "src/core/sys.h"
#include "src/http/static_content.h"
#include "src/load/httperf.h"
#include "src/load/inactive_pool.h"
#include "src/servers/hybrid_server.h"

int main() {
  using namespace scio;

  Simulator sim;
  SimKernel kernel(&sim);
  NetStack net(&kernel);
  Process& proc = kernel.CreateProcess("hybrid");
  Sys sys(&kernel, &proc, &net);
  StaticContent content;

  HybridServerConfig hybrid_config;
  hybrid_config.policy.high_watermark = 0.25;  // switch eagerly, for the demo
  HybridServer server(&sys, &content, ServerConfig{}, ThttpdDevPollConfig{}, hybrid_config);
  server.Setup();
  server.SetupDevPoll();
  server.SetupHybrid();

  auto listener = sys.listener(server.listener_fd());
  InactiveWorkload inactive_config;
  inactive_config.connections = 251;
  InactivePool pool(&net, listener, inactive_config);
  pool.Start();

  // Three phases: comfortable, overload, comfortable again.
  struct Phase {
    double rate;
    SimTime start;
  };
  const Phase phases[] = {{400, Seconds(1)}, {1400, Seconds(5)}, {400, Seconds(9)}};
  std::vector<std::unique_ptr<HttperfGenerator>> generators;
  for (const Phase& phase : phases) {
    ActiveWorkload workload;
    workload.request_rate = phase.rate;
    workload.duration = Seconds(4);
    workload.seed = static_cast<uint64_t>(phase.rate) + static_cast<uint64_t>(phase.start);
    generators.push_back(std::make_unique<HttperfGenerator>(&net, listener, workload));
    generators.back()->Start(phase.start);
  }

  // Sample the server's mode once per simulated 500ms.
  EventMode last_mode = EventMode::kSignals;
  std::cout << "t=0.0s mode=signals (initial)\n";
  for (SimTime t = Millis(500); t < Seconds(14); t += Millis(500)) {
    sim.ScheduleAt(t, [&server, &kernel, &proc, &last_mode] {
      const EventMode mode = server.mode();
      if (mode != last_mode) {
        std::cout << "t=" << ToSeconds(kernel.now()) << "s mode switch -> "
                  << (mode == EventMode::kSignals ? "signals" : "/dev/poll")
                  << " (rt queue length " << proc.rt_queue_length() << ")\n";
        last_mode = mode;
      }
    });
  }

  server.Run(Seconds(14));
  pool.Shutdown();

  uint64_t served = server.stats().responses_sent;
  std::cout << "\nserved " << served << " requests; mode switches: "
            << server.stats().mode_switches
            << "; overflow recoveries: " << server.stats().overflow_recoveries
            << "; rt queue peak: " << proc.rt_queue_peak() << "\n";
  std::cout << (server.mode() == EventMode::kSignals
                    ? "back in signal mode after the storm - the switch-back logic "
                      "Brown never implemented (paper §6).\n"
                    : "still in polling mode.\n");
  return 0;
}
